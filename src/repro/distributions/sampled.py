"""The paper's constant-space representation of a general distribution.

Section 4 of the paper observes that, because every distribution manipulation
happens in Laplace space and the final answer is produced by a *numerical*
inversion algorithm that only ever evaluates the transform at a fixed, finite
set of ``s``-points, it suffices to store those sampled values.  The storage
is then constant per distribution, independent of the distribution's type and
stable under composition (sums become pointwise products, probabilistic
choices become pointwise convex combinations).

:class:`SampledTransform` implements exactly that representation.
"""
from __future__ import annotations

from typing import Mapping

import numpy as np

from .base import Distribution

__all__ = ["SampledTransform", "sample_transform"]


def _canonical(s: complex) -> complex:
    """Round an s-point so that lookups are robust to float noise."""
    return complex(round(s.real, 12), round(s.imag, 12))


class SampledTransform(Distribution):
    """A distribution represented only by transform values at fixed s-points.

    Parameters
    ----------
    values:
        Mapping from complex ``s`` to the transform value ``L(s)``.
    mean:
        Optional known mean, carried along for steady-state computations
        (the transform samples alone cannot recover moments exactly).
    """

    def __init__(self, values: Mapping[complex, complex], mean: float | None = None):
        if not values:
            raise ValueError("SampledTransform requires at least one s-point")
        self._values = {_canonical(complex(k)): complex(v) for k, v in values.items()}
        self._mean = None if mean is None else float(mean)

    # -------------------------------------------------------------- factory
    @classmethod
    def from_distribution(cls, dist: Distribution, s_points) -> "SampledTransform":
        """Sample ``dist``'s transform at ``s_points`` (the inversion grid)."""
        s_points = np.asarray(list(s_points), dtype=complex)
        vals = np.asarray(dist.lst(s_points), dtype=complex)
        mean = None
        try:
            mean = dist.mean()
        except NotImplementedError:  # pragma: no cover - all current dists have means
            mean = None
        return cls({s: v for s, v in zip(s_points, vals)}, mean=mean)

    # ---------------------------------------------------------------- views
    @property
    def s_points(self) -> np.ndarray:
        return np.asarray(sorted(self._values, key=lambda z: (z.real, z.imag)), dtype=complex)

    @property
    def storage_size(self) -> int:
        """Number of stored complex samples — constant under composition."""
        return len(self._values)

    def value_at(self, s: complex) -> complex:
        key = _canonical(complex(s))
        try:
            return self._values[key]
        except KeyError:
            raise KeyError(
                f"s-point {s!r} was not part of this transform's sampling grid"
            ) from None

    # --------------------------------------------------------- Distribution
    def lst(self, s):
        s_arr = np.atleast_1d(self._as_complex(s))
        vals = np.asarray([self.value_at(x) for x in s_arr.ravel()], dtype=complex)
        vals = vals.reshape(s_arr.shape)
        return self._match_shape(vals, s)

    def sample(self, rng, size=None):
        raise NotImplementedError(
            "SampledTransform stores only transform values; it cannot be sampled"
        )

    def mean(self):
        if self._mean is None:
            raise NotImplementedError("mean was not recorded for this SampledTransform")
        return self._mean

    # ---------------------------------------------------------- composition
    def _binary(self, other, op, mean_op=None) -> "SampledTransform":
        if isinstance(other, SampledTransform):
            keys = set(self._values) & set(other._values)
            if not keys:
                raise ValueError("SampledTransforms share no common s-points")
            new_mean = None
            if mean_op is not None and self._mean is not None and other._mean is not None:
                new_mean = mean_op(self._mean, other._mean)
            return SampledTransform(
                {k: op(self._values[k], other._values[k]) for k in keys}, mean=new_mean
            )
        if isinstance(other, (int, float, complex)):
            return SampledTransform(
                {k: op(v, other) for k, v in self._values.items()}, mean=None
            )
        return NotImplemented

    def __add__(self, other):
        """Pointwise sum — used for weighted probabilistic choice."""
        return self._binary(other, lambda a, b: a + b)

    __radd__ = __add__

    def __mul__(self, other):
        """Pointwise product — convolution of delays (or scalar weighting)."""
        return self._binary(other, lambda a, b: a * b, mean_op=lambda a, b: a + b)

    __rmul__ = __mul__

    def convolve(self, other: "SampledTransform") -> "SampledTransform":
        """Delay addition: product of transforms, means add."""
        return self * other

    def mix(self, other: "SampledTransform", weight: float) -> "SampledTransform":
        """Probabilistic choice: ``weight`` on self, ``1 - weight`` on other."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must lie in [0, 1]")
        keys = set(self._values) & set(other._values)
        if not keys:
            raise ValueError("SampledTransforms share no common s-points")
        mean = None
        if self._mean is not None and other._mean is not None:
            mean = weight * self._mean + (1.0 - weight) * other._mean
        return SampledTransform(
            {k: weight * self._values[k] + (1.0 - weight) * other._values[k] for k in keys},
            mean=mean,
        )

    def _key(self):
        return ("SampledTransform", tuple(sorted(self._values.items(), key=lambda kv: (kv[0].real, kv[0].imag))))


def sample_transform(dist: Distribution, s_points) -> SampledTransform:
    """Functional alias for :meth:`SampledTransform.from_distribution`."""
    return SampledTransform.from_distribution(dist, s_points)
