"""Numerical Laplace–Stieltjes transforms for densities without closed forms.

The transform ``E[e^{-sT}] = int_0^inf e^{-st} f(t) dt`` is evaluated by
composite Gauss–Legendre quadrature on ``[0, upper]``.  The panel count adapts
to the oscillation frequency ``|Im(s)|`` so that each period of the
``e^{-i Im(s) t}`` factor is resolved by several panels.  Any probability mass
beyond ``upper`` is accounted for as an atom at ``upper`` (its contribution is
bounded by the tail probability, which callers keep below ~1e-10).
"""
from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numeric_lst"]

# 16-point Gauss–Legendre nodes/weights on [-1, 1], reused for every panel.
_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(16)


def numeric_lst(
    pdf: Callable[[np.ndarray], np.ndarray],
    s_values: np.ndarray,
    *,
    upper: float,
    lower: float = 0.0,
    cdf: Callable[[np.ndarray], np.ndarray] | None = None,
    panels_per_period: int = 4,
    min_panels: int = 32,
    max_panels: int = 4000,
) -> np.ndarray:
    """Evaluate the Laplace transform of ``pdf`` at each complex ``s``.

    Parameters
    ----------
    pdf:
        Vectorised density function on ``[lower, upper]``.
    s_values:
        1-D array of complex transform arguments with ``Re(s) >= 0``.
    upper, lower:
        Integration limits; ``upper`` should capture essentially all mass.
    cdf:
        Optional CDF used to add the truncated-tail correction
        ``e^{-s upper} (1 - F(upper))``.
    panels_per_period:
        Number of quadrature panels per oscillation period of ``e^{-i Im(s) t}``.
    """
    s_values = np.asarray(s_values, dtype=complex).ravel()
    if upper <= lower:
        raise ValueError(f"upper ({upper}) must exceed lower ({lower})")
    if not np.isfinite(upper):
        raise ValueError("upper integration limit must be finite")

    out = np.empty(s_values.shape, dtype=complex)
    length = upper - lower
    for idx, s in enumerate(s_values):
        if s.real < -1e-12:
            raise ValueError(f"numeric_lst requires Re(s) >= 0, got {s!r}")
        # Truncate further when the exponential damping makes the far tail
        # negligible: beyond t0 with Re(s) * (t0 - lower) > 46, e^{-Re(s) t} < 1e-20.
        eff_upper = upper
        if s.real > 0:
            eff_upper = min(upper, lower + 46.0 / s.real)
            eff_upper = max(eff_upper, lower + 1e-12)
        eff_length = eff_upper - lower

        periods = abs(s.imag) * eff_length / (2.0 * np.pi)
        n_panels = int(min(max(min_panels, panels_per_period * (periods + 1)), max_panels))
        edges = np.linspace(lower, eff_upper, n_panels + 1)
        # Many densities (Weibull, gamma with shape < 1, ...) have derivative
        # singularities at the lower endpoint; grade the first uniform panel
        # geometrically so the quadrature error there does not dominate.
        first_width = edges[1] - edges[0]
        graded = edges[0] + first_width * 0.5 ** np.arange(24, 0, -1)
        edges = np.concatenate(([edges[0]], graded, edges[1:]))
        half = 0.5 * (edges[1:] - edges[:-1])
        mid = 0.5 * (edges[1:] + edges[:-1])
        # nodes has shape (n_panels, 16)
        nodes = mid[:, None] + half[:, None] * _GL_NODES[None, :]
        weights = half[:, None] * _GL_WEIGHTS[None, :]
        integrand = pdf(nodes) * np.exp(-s * nodes)
        value = np.sum(weights * integrand)

        if cdf is not None:
            tail = 1.0 - float(np.asarray(cdf(np.asarray([eff_upper])))[0])
            if tail > 0.0:
                value = value + tail * np.exp(-s * eff_upper)
        out[idx] = value
    return out
