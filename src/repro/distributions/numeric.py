"""Numerical Laplace–Stieltjes transforms for densities without closed forms.

The transform ``E[e^{-sT}] = int_0^inf e^{-st} f(t) dt`` is evaluated by
composite Gauss–Legendre quadrature on ``[0, upper]``.  The panel count adapts
to the oscillation frequency ``|Im(s)|`` so that each period of the
``e^{-i Im(s) t}`` factor is resolved by several panels.  Any probability mass
beyond ``upper`` is accounted for as an atom at ``upper`` (its contribution is
bounded by the tail probability, which callers keep below ~1e-10).
"""
from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numeric_lst"]

# 16-point Gauss–Legendre nodes/weights on [-1, 1], reused for every panel.
_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(16)


def numeric_lst(
    pdf: Callable[[np.ndarray], np.ndarray],
    s_values: np.ndarray,
    *,
    upper: float,
    lower: float = 0.0,
    cdf: Callable[[np.ndarray], np.ndarray] | None = None,
    panels_per_period: int = 4,
    min_panels: int = 32,
    max_panels: int = 4000,
) -> np.ndarray:
    """Evaluate the Laplace transform of ``pdf`` at each complex ``s``.

    Parameters
    ----------
    pdf:
        Vectorised density function on ``[lower, upper]``.
    s_values:
        1-D array of complex transform arguments with ``Re(s) >= 0``.
    upper, lower:
        Integration limits; ``upper`` should capture essentially all mass.
    cdf:
        Optional CDF used to add the truncated-tail correction
        ``e^{-s upper} (1 - F(upper))``.
    panels_per_period:
        Number of quadrature panels per oscillation period of ``e^{-i Im(s) t}``.
    """
    s_values = np.asarray(s_values, dtype=complex).ravel()
    if upper <= lower:
        raise ValueError(f"upper ({upper}) must exceed lower ({lower})")
    if not np.isfinite(upper):
        raise ValueError("upper integration limit must be finite")

    if np.any(s_values.real < -1e-12):
        bad = s_values[s_values.real < -1e-12][0]
        raise ValueError(f"numeric_lst requires Re(s) >= 0, got {bad!r}")

    # Truncate further when the exponential damping makes the far tail
    # negligible: beyond t0 with Re(s) * (t0 - lower) > 46, e^{-Re(s) t} < 1e-20.
    eff_uppers = np.full(s_values.shape, upper)
    damped = s_values.real > 0
    eff_uppers[damped] = np.minimum(upper, lower + 46.0 / s_values.real[damped])
    eff_uppers = np.maximum(eff_uppers, lower + 1e-12)

    periods = np.abs(s_values.imag) * (eff_uppers - lower) / (2.0 * np.pi)
    panel_counts = np.clip(
        panels_per_period * (periods + 1), min_panels, max_panels
    ).astype(np.int64)

    # s-points sharing a quadrature grid — same truncation point and panel
    # count — are integrated together so the (expensive) density evaluation
    # at the nodes happens once per grid rather than once per s-point.  The
    # inversion contours this library uses produce long runs of such points:
    # every Euler s-point for one t-value has the same real part.
    out = np.empty(s_values.shape, dtype=complex)
    grids: dict[tuple[float, int], list[int]] = {}
    for idx in range(s_values.size):
        grids.setdefault((float(eff_uppers[idx]), int(panel_counts[idx])), []).append(idx)

    for (eff_upper, n_panels), indices in grids.items():
        edges = np.linspace(lower, eff_upper, n_panels + 1)
        # Many densities (Weibull, gamma with shape < 1, ...) have derivative
        # singularities at the lower endpoint; grade the first uniform panel
        # geometrically so the quadrature error there does not dominate.
        first_width = edges[1] - edges[0]
        graded = edges[0] + first_width * 0.5 ** np.arange(24, 0, -1)
        edges = np.concatenate(([edges[0]], graded, edges[1:]))
        half = 0.5 * (edges[1:] - edges[:-1])
        mid = 0.5 * (edges[1:] + edges[:-1])
        # nodes has shape (n_panels + 24, 16); flattened for broadcasting.
        nodes = (mid[:, None] + half[:, None] * _GL_NODES[None, :]).ravel()
        weights = (half[:, None] * _GL_WEIGHTS[None, :]).ravel()
        weighted_pdf = weights * np.asarray(pdf(nodes), dtype=float)
        tail = 0.0
        if cdf is not None:
            tail = max(1.0 - float(np.asarray(cdf(np.asarray([eff_upper])))[0]), 0.0)
        # Broadcast over the group's s-points in modest chunks so the
        # (n_s, n_nodes) oscillation factor never dominates memory.
        group = np.asarray(indices, dtype=np.int64)
        for start in range(0, group.size, 32):
            chunk = group[start : start + 32]
            s_chunk = s_values[chunk]
            values = np.exp(-s_chunk[:, None] * nodes[None, :]) @ weighted_pdf
            if tail > 0.0:
                values = values + tail * np.exp(-s_chunk * eff_upper)
            out[chunk] = values
    return out
