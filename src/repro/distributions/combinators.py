"""Distribution combinators: probabilistic mixtures, convolutions, scaling, shifting.

These are the compositions the paper performs in Laplace space (e.g. the
``0.8 * uniformLT(1.5, 10, s) + 0.2 * erlangLT(0.001, 5, s)`` firing
distribution of transition ``t5`` in Fig. 3).  All compositions remain exact
in transform space and sample exactly in the time domain.
"""
from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..utils.validation import check_non_negative, check_positive, check_probability_vector
from .base import Distribution

__all__ = ["Mixture", "Convolution", "Scaled", "Shifted", "probabilistic_choice"]


class Mixture(Distribution):
    """Probabilistic mixture: with probability ``w_i`` the delay is drawn from ``components[i]``."""

    def __init__(self, components: Sequence[Distribution], weights: Iterable[float]):
        components = list(components)
        if not components:
            raise ValueError("Mixture requires at least one component")
        if not all(isinstance(c, Distribution) for c in components):
            raise TypeError("Mixture components must be Distribution instances")
        self.components = components
        self.weights = check_probability_vector(weights, "weights", normalise=True)
        if len(self.weights) != len(self.components):
            raise ValueError("weights and components must have the same length")

    def lst(self, s):
        s_arr = self._as_complex(s)
        total = np.zeros(np.shape(s_arr), dtype=complex)
        for w, comp in zip(self.weights, self.components):
            total = total + w * np.asarray(comp.lst(s_arr), dtype=complex)
        return self._match_shape(total, s)

    def sample(self, rng, size=None):
        if size is None:
            branch = rng.choice(len(self.components), p=self.weights)
            return self.components[branch].sample(rng)
        n = int(np.prod(size))
        branches = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n, dtype=float)
        for idx, comp in enumerate(self.components):
            mask = branches == idx
            count = int(mask.sum())
            if count:
                out[mask] = np.asarray(comp.sample(rng, size=count), dtype=float)
        return out.reshape(size)

    def mean(self):
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def variance(self):
        m = self.mean()
        second = sum(
            w * (c.variance() + c.mean() ** 2) for w, c in zip(self.weights, self.components)
        )
        return float(second - m**2)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return sum(w * np.asarray(c.pdf(t)) for w, c in zip(self.weights, self.components))

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return sum(w * np.asarray(c.cdf(t)) for w, c in zip(self.weights, self.components))

    def _key(self):
        return (
            "Mixture",
            tuple(self.weights.tolist()),
            tuple(c._key() for c in self.components),
        )


class Convolution(Distribution):
    """Sum of independent delays: the transform is the product of the components'."""

    def __init__(self, components: Sequence[Distribution]):
        components = list(components)
        if not components:
            raise ValueError("Convolution requires at least one component")
        if not all(isinstance(c, Distribution) for c in components):
            raise TypeError("Convolution components must be Distribution instances")
        self.components = components

    def lst(self, s):
        s_arr = self._as_complex(s)
        total = np.ones(np.shape(s_arr), dtype=complex)
        for comp in self.components:
            total = total * np.asarray(comp.lst(s_arr), dtype=complex)
        return self._match_shape(total, s)

    def sample(self, rng, size=None):
        if size is None:
            return float(sum(float(np.asarray(c.sample(rng))) for c in self.components))
        acc = np.zeros(size, dtype=float)
        for comp in self.components:
            acc = acc + np.asarray(comp.sample(rng, size=size), dtype=float)
        return acc

    def mean(self):
        return float(sum(c.mean() for c in self.components))

    def variance(self):
        return float(sum(c.variance() for c in self.components))

    def _key(self):
        return ("Convolution", tuple(c._key() for c in self.components))


class Scaled(Distribution):
    """The delay ``factor * X`` for an underlying distribution ``X``."""

    def __init__(self, inner: Distribution, factor: float):
        if not isinstance(inner, Distribution):
            raise TypeError("inner must be a Distribution")
        self.inner = inner
        self.factor = check_positive(factor, "factor")

    def lst(self, s):
        s_arr = self._as_complex(s)
        return self._match_shape(
            np.asarray(self.inner.lst(self.factor * s_arr), dtype=complex), s
        )

    def sample(self, rng, size=None):
        return self.factor * np.asarray(self.inner.sample(rng, size=size))

    def mean(self):
        return self.factor * self.inner.mean()

    def variance(self):
        return self.factor**2 * self.inner.variance()

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.asarray(self.inner.pdf(t / self.factor)) / self.factor

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.asarray(self.inner.cdf(t / self.factor))

    def _key(self):
        return ("Scaled", self.inner._key(), self.factor)


class Shifted(Distribution):
    """The delay ``X + shift`` for an underlying distribution ``X`` and ``shift >= 0``."""

    def __init__(self, inner: Distribution, shift: float):
        if not isinstance(inner, Distribution):
            raise TypeError("inner must be a Distribution")
        self.inner = inner
        self.shift = check_non_negative(shift, "shift")

    def lst(self, s):
        s_arr = self._as_complex(s)
        val = np.exp(-self.shift * s_arr) * np.asarray(self.inner.lst(s_arr), dtype=complex)
        return self._match_shape(val, s)

    def sample(self, rng, size=None):
        return self.shift + np.asarray(self.inner.sample(rng, size=size))

    def mean(self):
        return self.shift + self.inner.mean()

    def variance(self):
        return self.inner.variance()

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.asarray(self.inner.pdf(t - self.shift))

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.asarray(self.inner.cdf(t - self.shift))

    def _key(self):
        return ("Shifted", self.inner._key(), self.shift)


def probabilistic_choice(*branches: tuple[float, Distribution]) -> Mixture:
    """Convenience constructor mirroring the paper's additive LT notation.

    ``probabilistic_choice((0.8, Uniform(1.5, 10)), (0.2, Erlang(0.001, 5)))``
    builds the firing distribution of transition ``t5`` in Fig. 3.
    """
    if not branches:
        raise ValueError("at least one (weight, distribution) branch is required")
    weights = [w for w, _ in branches]
    comps = [d for _, d in branches]
    return Mixture(comps, weights)
