"""The distributed master/worker analysis pipeline (Section 4 of the paper).

The paper's tool distributes work at the granularity of *s-points*: the
master decides which transform evaluations the Laplace inversion will need,
puts them on a global work queue, slaves pull s-values and run the iterative
passage-time algorithm for each, results are cached in memory and on disk
(checkpointing), and the master finally performs the numerical inversion.
No slave–slave communication is needed, which is what gives the near-linear
speedups of Table 2.

This package reproduces that architecture, with one modernisation: the unit
of dispatch is an :class:`SBlock` (a memory-budgeted batch of contour
points) rather than a scalar s-value, and workers attach a shared-memory
kernel plane (:mod:`repro.smp.plane`) instead of receiving a pickled copy of
the model:

* :class:`SPointWorkQueue` / :class:`SBlockQueue` — the global queues of
  outstanding s-points and dispatched s-blocks,
* :class:`CheckpointStore` — the on-disk cache keyed by a model/measure digest,
* backends — :class:`SerialBackend`, :class:`MultiprocessingBackend` (real
  parallelism on this machine's cores, block-granular dispatch with
  per-block checkpoint merge and resume-on-failure) and
  :class:`SimulatedCluster` (a deterministic model of a cluster with a
  configurable number of slaves, per-task compute times, master dispatch
  overhead and network latency, used to regenerate the shape of Table 2),
* :class:`DistributedPipeline` — the master: orchestrates queue, backend,
  checkpointing and final inversion.
"""
from .queue import SBlock, SBlockQueue, SPointWorkQueue, WorkItem
from .checkpoint import CheckpointStore
from .backends import Backend, PoisonBlockError, SerialBackend, MultiprocessingBackend
from .simcluster import SimulatedCluster, ClusterTiming, ScalabilityRow, scalability_table, relative_timing
from .pipeline import DistributedPipeline, PipelineStatistics

__all__ = [
    "SPointWorkQueue",
    "WorkItem",
    "SBlock",
    "SBlockQueue",
    "CheckpointStore",
    "Backend",
    "PoisonBlockError",
    "SerialBackend",
    "MultiprocessingBackend",
    "SimulatedCluster",
    "ClusterTiming",
    "ScalabilityRow",
    "scalability_table",
    "relative_timing",
    "DistributedPipeline",
    "PipelineStatistics",
]
