"""Execution backends for transform-evaluation jobs.

A backend takes a :class:`~repro.core.jobs.TransformJob` and a list of
s-points and returns ``{s: L(s)}``.  Three implementations are provided:

* :class:`SerialBackend` — in-process evaluation, optionally recording the
  wall-clock duration of every s-point (the measured durations feed the
  simulated cluster used to regenerate Table 2),
* :class:`MultiprocessingBackend` — a pool of worker *processes*, each of
  which receives the job once (master -> slave, exactly like the paper's
  slaves receiving the model) and then streams s-values,
* :class:`repro.distributed.simcluster.SimulatedCluster` — not an executor
  but a timing model; see that module.
"""
from __future__ import annotations

import os
import time
from concurrent import futures
from typing import Iterable, Protocol

import numpy as np

from ..core.jobs import TransformJob

__all__ = ["Backend", "SerialBackend", "MultiprocessingBackend"]


class Backend(Protocol):
    """Anything that can evaluate a job at a batch of s-points."""

    def evaluate(self, job: TransformJob, s_points: Iterable[complex]) -> dict[complex, complex]:
        ...  # pragma: no cover - protocol definition


class SerialBackend:
    """Evaluate all s-points in the calling process.

    Parameters
    ----------
    record_timings:
        When true, the per-s-point wall-clock durations are appended to
        :attr:`task_durations`; the Table 2 benchmark replays them through the
        simulated cluster.
    """

    name = "serial"

    def __init__(self, *, record_timings: bool = False):
        self.record_timings = record_timings
        self.task_durations: list[float] = []

    def evaluate(self, job: TransformJob, s_points) -> dict[complex, complex]:
        results: dict[complex, complex] = {}
        for s in s_points:
            start = time.perf_counter()
            results[complex(s)] = job.evaluate(complex(s))
            if self.record_timings:
                self.task_durations.append(time.perf_counter() - start)
        return results


# ---------------------------------------------------------------------------
# Multiprocessing backend.  The job is shipped to each worker once via the
# pool initializer (the paper's "slaves are assigned the next available
# s-value" loop then only moves bare complex numbers around).
# ---------------------------------------------------------------------------

_WORKER_JOB: TransformJob | None = None


def _worker_initialise(job: TransformJob) -> None:  # pragma: no cover - runs in subprocess
    global _WORKER_JOB
    _WORKER_JOB = job


def _worker_evaluate(s: complex) -> tuple[complex, complex]:  # pragma: no cover - subprocess
    assert _WORKER_JOB is not None, "worker used before initialisation"
    return s, _WORKER_JOB.evaluate(s)


class MultiprocessingBackend:
    """Evaluate s-points on a pool of worker processes.

    Parameters
    ----------
    processes:
        Number of slave processes (defaults to the machine's CPU count).
    chunk_size:
        How many s-points each task message carries; larger chunks amortise
        inter-process overhead for cheap evaluations.
    """

    name = "multiprocessing"

    def __init__(self, processes: int | None = None, *, chunk_size: int = 1):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes or os.cpu_count() or 1
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.last_wall_clock: float | None = None

    def evaluate(self, job: TransformJob, s_points) -> dict[complex, complex]:
        s_points = [complex(s) for s in np.asarray(list(s_points), dtype=complex)]
        if not s_points:
            return {}
        start = time.perf_counter()
        results: dict[complex, complex] = {}
        with futures.ProcessPoolExecutor(
            max_workers=min(self.processes, len(s_points)),
            initializer=_worker_initialise,
            initargs=(job,),
        ) as pool:
            for s, value in pool.map(_worker_evaluate, s_points, chunksize=self.chunk_size):
                results[complex(s)] = complex(value)
        self.last_wall_clock = time.perf_counter() - start
        return results
