"""Execution backends for transform-evaluation jobs.

A backend takes a :class:`~repro.core.jobs.TransformJob` and a list of
s-points and returns ``{s: L(s)}``.  Three implementations are provided:

* :class:`SerialBackend` — in-process evaluation, optionally recording the
  wall-clock duration of every s-point (the measured durations feed the
  simulated cluster used to regenerate Table 2),
* :class:`MultiprocessingBackend` — a pool of worker *processes*, each of
  which receives the job once (master -> slave, exactly like the paper's
  slaves receiving the model) and then streams s-values,
* :class:`repro.distributed.simcluster.SimulatedCluster` — not an executor
  but a timing model; see that module.
"""
from __future__ import annotations

import os
import time
from concurrent import futures
from typing import Iterable, Protocol

import numpy as np

from ..core.jobs import TransformJob

__all__ = ["Backend", "SerialBackend", "MultiprocessingBackend"]


class Backend(Protocol):
    """Anything that can evaluate a job at a batch of s-points."""

    def evaluate(self, job: TransformJob, s_points: Iterable[complex]) -> dict[complex, complex]:
        ...  # pragma: no cover - protocol definition


class SerialBackend:
    """Evaluate all s-points in the calling process via the batched engine.

    Parameters
    ----------
    record_timings:
        When true, per-s-point wall-clock durations are appended to
        :attr:`task_durations`; the Table 2 benchmark replays them through the
        simulated cluster.  The batched engine evaluates the whole grid in one
        sweep, so the measured batch time is apportioned over the points in
        proportion to the per-point work reported by the job (iteration/matvec
        counts, LU-solve equivalents) — the per-task durations keep the same
        relative shape a scalar evaluation loop would have recorded.
    """

    name = "serial"

    def __init__(self, *, record_timings: bool = False):
        self.record_timings = record_timings
        self.task_durations: list[float] = []

    def evaluate(self, job: TransformJob, s_points) -> dict[complex, complex]:
        s_list = [complex(s) for s in s_points]
        if not s_list:
            return {}
        start = time.perf_counter()
        values, costs = job.evaluate_batch(np.asarray(s_list, dtype=complex))
        elapsed = time.perf_counter() - start
        if self.record_timings:
            total_cost = float(np.sum(costs))
            if total_cost > 0:
                durations = elapsed * np.asarray(costs, dtype=float) / total_cost
            else:
                durations = np.full(len(s_list), elapsed / len(s_list))
            self.task_durations.extend(float(d) for d in durations)
        return {s: complex(v) for s, v in zip(s_list, values)}


# ---------------------------------------------------------------------------
# Multiprocessing backend.  The job is shipped to each worker once via the
# pool initializer (the paper's "slaves are assigned the next available
# s-value" loop); each task message then carries a *chunk* of s-points so the
# worker can run the batched engine on it, rather than a single s-value.
# ---------------------------------------------------------------------------

_WORKER_JOB: TransformJob | None = None


def _worker_initialise(job: TransformJob) -> None:  # pragma: no cover - runs in subprocess
    global _WORKER_JOB
    _WORKER_JOB = job


def _worker_evaluate_chunk(
    chunk: list[complex],
) -> list[tuple[complex, complex]]:  # pragma: no cover - subprocess
    assert _WORKER_JOB is not None, "worker used before initialisation"
    return list(_WORKER_JOB.evaluate_many(chunk).items())


class MultiprocessingBackend:
    """Evaluate s-points on a pool of worker processes.

    Parameters
    ----------
    processes:
        Number of slave processes (defaults to the machine's CPU count).
    chunk_size:
        How many s-points each task message carries; each chunk is evaluated
        with the worker's batched engine, so larger chunks both amortise
        inter-process overhead and share per-batch work (one transform
        evaluation per distribution, vectorised matvecs).  ``None`` (default)
        picks a size that gives every worker about four chunks, balancing
        batching efficiency against tail imbalance.
    """

    name = "multiprocessing"

    def __init__(self, processes: int | None = None, *, chunk_size: int | None = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes or os.cpu_count() or 1
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.last_wall_clock: float | None = None

    def evaluate(self, job: TransformJob, s_points) -> dict[complex, complex]:
        s_points = [complex(s) for s in np.asarray(list(s_points), dtype=complex)]
        if not s_points:
            return {}
        start = time.perf_counter()
        workers = min(self.processes, len(s_points))
        chunk_size = self.chunk_size or max(1, -(-len(s_points) // (4 * workers)))
        chunks = [
            s_points[i : i + chunk_size] for i in range(0, len(s_points), chunk_size)
        ]
        results: dict[complex, complex] = {}
        with futures.ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            initializer=_worker_initialise,
            initargs=(job,),
        ) as pool:
            for pairs in pool.map(_worker_evaluate_chunk, chunks):
                for s, value in pairs:
                    results[complex(s)] = complex(value)
        self.last_wall_clock = time.perf_counter() - start
        return results
