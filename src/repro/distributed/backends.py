"""Execution backends for transform-evaluation jobs.

A backend takes a :class:`~repro.core.jobs.TransformJob` and a list of
s-points and returns ``{s: L(s)}``.  Three implementations are provided:

* :class:`SerialBackend` — in-process evaluation, optionally recording the
  wall-clock duration of every s-point (the measured durations feed the
  simulated cluster used to regenerate Table 2),
* :class:`MultiprocessingBackend` — a pool of worker *processes* sharing one
  kernel image: the master exports the kernel plane once (shared memory, or
  an mmap'd file via a :class:`~repro.smp.plane.PlaneStore`), ships each
  worker a few-hundred-byte :class:`~repro.core.jobs.JobSpec` at pool start,
  and then streams :class:`~repro.distributed.queue.SBlock` work units,
* :class:`repro.distributed.simcluster.SimulatedCluster` — not an executor
  but a timing model; see that module.
"""
from __future__ import annotations

import os
import time
from concurrent import futures
from typing import Iterable, Protocol

import numpy as np

from ..core.jobs import JobSpec, TransformJob
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..smp.kernel import kernel_content_digest
from ..smp.passage import SPointPolicy
from ..smp.plane import KernelPlane, PlaneHandle, PlaneStore
from .queue import SBlock, SBlockQueue

__all__ = ["Backend", "SerialBackend", "MultiprocessingBackend"]


class Backend(Protocol):
    """Anything that can evaluate a job at a batch of s-points."""

    def evaluate(self, job: TransformJob, s_points: Iterable[complex]) -> dict[complex, complex]:
        ...  # pragma: no cover - protocol definition


class SerialBackend:
    """Evaluate all s-points in the calling process via the batched engine.

    Parameters
    ----------
    record_timings:
        When true, per-s-point wall-clock durations are appended to
        :attr:`task_durations`; the Table 2 benchmark replays them through the
        simulated cluster.  The batched engine evaluates the whole grid in one
        sweep, so the measured batch time is apportioned over the points in
        proportion to the per-point work reported by the job (iteration/matvec
        counts, LU-solve equivalents) — the per-task durations keep the same
        relative shape a scalar evaluation loop would have recorded.
    """

    name = "serial"

    def __init__(self, *, record_timings: bool = False):
        self.record_timings = record_timings
        self.task_durations: list[float] = []

    def evaluate(self, job: TransformJob, s_points) -> dict[complex, complex]:
        s_list = [complex(s) for s in s_points]
        if not s_list:
            return {}
        start = time.perf_counter()
        values, costs = job.evaluate_batch(np.asarray(s_list, dtype=complex))
        elapsed = time.perf_counter() - start
        if self.record_timings:
            total_cost = float(np.sum(costs))
            if total_cost > 0:
                durations = elapsed * np.asarray(costs, dtype=float) / total_cost
            else:
                durations = np.full(len(s_list), elapsed / len(s_list))
            self.task_durations.extend(float(d) for d in durations)
        return {s: complex(v) for s, v in zip(s_list, values)}


# ---------------------------------------------------------------------------
# Multiprocessing backend.  Pool start-up attaches every worker to the shared
# kernel plane and builds the job from its JobSpec (the paper's "slaves are
# assigned the model" handshake, minus the model copy); each task message then
# carries one s-block, so the worker runs the batched engine on a
# memory-budgeted block rather than a single s-value.
# ---------------------------------------------------------------------------

_WORKER_JOB: TransformJob | None = None
_WORKER_PLANE = None


def _block_worker_init(
    spec: JobSpec, handle: PlaneHandle, trace_enabled: bool = False
) -> None:  # pragma: no cover - subprocess
    global _WORKER_JOB, _WORKER_PLANE
    tracer = obs_trace.get_tracer()
    tracer.clear()  # drop spans inherited from the parent on fork
    if trace_enabled:
        tracer.enable()
    _WORKER_PLANE = handle.attach()
    _WORKER_JOB = spec.build(_WORKER_PLANE.evaluator)


def _block_worker_run(block: SBlock):  # pragma: no cover - subprocess
    assert _WORKER_JOB is not None, "worker used before initialisation"
    kill_block = os.environ.get("REPRO_TEST_KILL_BLOCK")
    if kill_block is not None and int(kill_block) == block.index:
        sentinel = os.environ.get("REPRO_TEST_KILL_SENTINEL", "")
        if sentinel and not os.path.exists(sentinel):
            with open(sentinel, "w") as f:
                f.write(str(os.getpid()))
            os._exit(1)  # simulate a worker crash, exactly once
    registry = obs_metrics.get_metrics()
    baseline = registry.snapshot()
    started = time.perf_counter()
    with obs_trace.span("s-block", index=block.index, points=block.n_points):
        values, _ = _WORKER_JOB.evaluate_batch(block.s_points)
    elapsed = time.perf_counter() - started
    pairs = [(complex(s), complex(v)) for s, v in zip(block.s_points, values)]
    # Everything the master-side observability needs from this block: the
    # worker's finished spans and its metrics delta, shipped with the result
    # so crashes lose a block's telemetry only alongside the block itself.
    obs = {
        "spans": obs_trace.get_tracer().drain(),
        "metrics": registry.diff(baseline),
    }
    return block.index, pairs, elapsed, os.getpid(), _WORKER_JOB.last_report, obs


class MultiprocessingBackend:
    """Evaluate s-blocks on a pool of worker processes sharing one kernel plane.

    Parameters
    ----------
    processes:
        Number of worker processes (defaults to the machine's CPU count).
    block_size:
        s-points per dispatched :class:`SBlock`.  ``None`` (default) delegates
        to :meth:`SPointPolicy.dispatch_block_points` — the same memory-budget
        computation the in-process engines block by, capped so every worker
        sees about four blocks.  ``chunk_size`` is the historical alias.
    plane_store:
        When given (a :class:`~repro.smp.plane.PlaneStore` or a directory
        path), the kernel plane is exported as an mmap'd *file* under that
        directory and workers attach by digest — the serve-fleet layout.
        Default is an anonymous shared-memory segment.
    max_retries:
        How many times a broken pool is rebuilt and the unfinished blocks
        resubmitted before giving up.  Completed blocks are never recomputed
        (and, when a checkpoint is threaded through, already merged to disk).
    """

    name = "multiprocessing"
    #: pipeline capability flag: evaluate() accepts checkpoint/digest and
    #: merges each block's results as it completes
    supports_blocks = True
    #: evaluate() accepts a ProgressReporter and advances it per block
    supports_progress = True

    def __init__(
        self,
        processes: int | None = None,
        *,
        block_size: int | None = None,
        chunk_size: int | None = None,
        plane_store: PlaneStore | str | None = None,
        max_retries: int = 2,
    ):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes or os.cpu_count() or 1
        if block_size is not None and chunk_size is not None:
            raise ValueError("pass block_size or chunk_size, not both")
        size = block_size if block_size is not None else chunk_size
        if size is not None and size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = size
        if isinstance(plane_store, (str, os.PathLike)):
            plane_store = PlaneStore(plane_store)
        self.plane_store = plane_store
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.last_wall_clock: float | None = None
        #: per-worker {"blocks", "busy_seconds", "points"} of the last evaluate
        self.last_worker_stats: dict[str, dict] | None = None
        self._plane_cache: dict[tuple[str, bool], KernelPlane] = {}

    # --------------------------------------------------------------- plumbing
    @property
    def chunk_size(self) -> int | None:
        """Historical name for :attr:`block_size`."""
        return self.block_size

    def _plane_handle(self, job: TransformJob, include_factored: bool) -> PlaneHandle:
        evaluator = job.evaluator
        digest = kernel_content_digest(job.kernel)
        with obs_trace.span(
            "plane-export",
            digest=digest,
            factored=include_factored,
            backing="file" if self.plane_store is not None else "shm",
        ):
            if include_factored:
                evaluator.factored().prewarm()
                evaluator.factored().col_structure()
            if self.plane_store is not None:
                return self.plane_store.export(
                    evaluator, include_factored=include_factored
                )
            key = (digest, include_factored)
            plane = self._plane_cache.get(key)
            if plane is None:
                plane = KernelPlane.build(
                    evaluator, backing="shm", include_factored=include_factored
                )
                self._plane_cache[key] = plane
            return plane.handle()

    def close(self) -> None:
        """Release any shared-memory planes this backend built."""
        for plane in self._plane_cache.values():
            plane.unlink()
        self._plane_cache.clear()

    # -------------------------------------------------------------------- API
    def evaluate(
        self,
        job: TransformJob,
        s_points,
        *,
        checkpoint=None,
        digest: str | None = None,
        progress=None,
    ) -> dict[complex, complex]:
        """Evaluate ``s_points``, dispatching s-blocks to the worker pool.

        When ``checkpoint`` (a :class:`~repro.distributed.checkpoint.CheckpointStore`)
        and ``digest`` are given, every completed block is merged to disk as
        it arrives, so a run that dies mid-grid resumes from the finished
        blocks rather than from nothing.  ``progress`` (a
        :class:`~repro.obs.progress.ProgressReporter`) is advanced once per
        completed block.
        """
        s_list = [complex(s) for s in np.asarray(list(s_points), dtype=complex)]
        if not s_list:
            return {}
        start = time.perf_counter()
        workers = min(self.processes, len(s_list))
        policy = job.policy or SPointPolicy()
        evaluator = job.evaluator
        engine = policy.resolve_engine(evaluator)
        if self.block_size is not None:
            block_size = min(
                self.block_size,
                policy.dispatch_block_points(
                    evaluator, engine, len(s_list), workers,
                    vector=job.kind() == "transient",
                ),
            )
        else:
            block_size = policy.dispatch_block_points(
                evaluator, engine, len(s_list), workers,
                vector=job.kind() == "transient",
            )
        include_factored = engine == "factored" and job.solver != "direct"
        handle = self._plane_handle(job, include_factored)
        spec = JobSpec.from_job(job)

        queue = SBlockQueue.from_points(s_list, block_size)
        if progress is not None:
            progress.add_total(queue.n_pending, len(s_list))
        reports: list[tuple[int, str, dict | None]] = []
        attempts = 0
        while queue.n_pending:
            outstanding = queue.outstanding()
            with futures.ProcessPoolExecutor(
                max_workers=min(workers, len(outstanding)),
                initializer=_block_worker_init,
                initargs=(spec, handle, obs_trace.get_tracer().enabled),
            ) as pool:
                by_future = {
                    pool.submit(_block_worker_run, block): block
                    for block in outstanding
                }
                broken = self._drain(
                    by_future, queue, checkpoint, digest, reports, progress
                )
            if broken:
                attempts += 1
                if attempts > self.max_retries:
                    raise futures.process.BrokenProcessPool(
                        f"worker pool died {attempts} time(s); "
                        f"{queue.n_pending} block(s) unfinished"
                    )
        self._finalise_report(job, queue, reports)
        self.last_wall_clock = time.perf_counter() - start
        self._note_busy_fractions(self.last_wall_clock)
        return dict(queue.results)

    def _drain(self, by_future, queue, checkpoint, digest, reports, progress=None) -> bool:
        """Process completions until the pool drains; True if the pool broke.

        Results that finished before a crash are kept (and checkpointed), so
        a retry only re-runs the genuinely unfinished blocks.  Each completed
        block is recorded exactly once here — telemetry (global per-worker
        counters, queue-depth gauge, progress, worker spans and metric
        deltas) rides the same path as the results, so a pool rebuild neither
        loses nor double-counts it.
        """
        registry = obs_metrics.get_metrics()
        depth_gauge = registry.gauge(
            "repro_sblocks_pending", "s-blocks not yet completed"
        )
        depth_gauge.set(queue.n_pending)
        broken = False
        not_done = set(by_future)
        while not_done:
            done, not_done = futures.wait(
                not_done, return_when=futures.FIRST_COMPLETED
            )
            for future in done:
                block = by_future[future]
                error = future.exception()
                if error is not None:
                    if isinstance(error, futures.process.BrokenProcessPool):
                        broken = True
                        continue
                    raise error
                index, pairs, elapsed, pid, report, obs = future.result()
                values = {s: v for s, v in pairs}
                queue.complete(block, values, worker=pid, duration=elapsed)
                reports.append((index, str(pid), report))
                obs_trace.get_tracer().absorb(obs.get("spans"))
                registry.absorb(obs.get("metrics"))
                obs_metrics.record_worker_block(
                    pid, block.n_points, elapsed, registry=registry
                )
                depth_gauge.set(queue.n_pending)
                if progress is not None:
                    progress.advance(1, block.n_points)
                if checkpoint is not None and digest is not None:
                    checkpoint.merge(digest, values)
        return broken

    def _note_busy_fractions(self, wall_clock: float) -> None:
        """Per-worker busy fraction of the evaluate that just finished."""
        if not wall_clock or not self.last_worker_stats:
            return
        gauge = obs_metrics.get_metrics().gauge(
            "repro_worker_busy_fraction",
            "busy seconds / wall-clock of the last pool evaluate",
            ("worker",),
        )
        for worker, entry in self.last_worker_stats.items():
            gauge.set(
                min(entry["busy_seconds"] / wall_clock, 1.0), worker=str(worker)
            )

    def _finalise_report(self, job, queue: SBlockQueue, reports) -> None:
        """Aggregate the workers' engine reports onto the master-side job."""
        blocks: list[dict] = []
        engine = None
        for index, pid, report in sorted(reports, key=lambda r: r[0]):
            if not report:
                continue
            engine = report.get("engine", engine)
            for entry in report.get("blocks", []):
                entry = dict(entry)
                entry["worker"] = pid
                blocks.append(entry)
        self.last_worker_stats = queue.worker_stats()
        job.last_report = {
            "engine": engine,
            "blocks": blocks,
            "workers": self.last_worker_stats,
        }