"""Execution backends for transform-evaluation jobs.

A backend takes a :class:`~repro.core.jobs.TransformJob` and a list of
s-points and returns ``{s: L(s)}``.  Three implementations are provided:

* :class:`SerialBackend` — in-process evaluation, optionally recording the
  wall-clock duration of every s-point (the measured durations feed the
  simulated cluster used to regenerate Table 2),
* :class:`MultiprocessingBackend` — a pool of worker *processes* sharing one
  kernel image: the master exports the kernel plane once (shared memory, or
  an mmap'd file via a :class:`~repro.smp.plane.PlaneStore`), ships each
  worker a few-hundred-byte :class:`~repro.core.jobs.JobSpec` at pool start,
  and then streams :class:`~repro.distributed.queue.SBlock` work units,
* :class:`repro.distributed.simcluster.SimulatedCluster` — not an executor
  but a timing model; see that module.
"""
from __future__ import annotations

import contextlib
import logging
import os
import shutil
import signal
import tempfile
import time
from concurrent import futures
from typing import Iterable, Protocol

import numpy as np

from .. import faults
from ..core.jobs import JobSpec, TransformJob
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..smp.kernel import kernel_content_digest
from ..smp.passage import SPointPolicy
from ..smp.plane import KernelPlane, PlaneHandle, PlaneStore
from .queue import SBlock, SBlockQueue

__all__ = [
    "Backend",
    "PoisonBlockError",
    "SerialBackend",
    "MultiprocessingBackend",
]

logger = logging.getLogger("repro.distributed")


class PoisonBlockError(RuntimeError):
    """One s-block keeps killing the pool: quarantined, run failed fast.

    Raised when the same block is implicated in ``poison_after`` consecutive
    pool breaks — a deterministic crasher (or hanger) that would otherwise
    burn every rebuild the retry budget allows while the rest of the grid
    starves.  Carries the block and its s-points so the operator can
    reproduce the failure in isolation.
    """

    def __init__(self, block_index: int, s_points, failures: int, reason: str):
        self.block_index = int(block_index)
        self.s_points = [complex(s) for s in s_points]
        self.failures = int(failures)
        self.reason = str(reason)
        preview = ", ".join(f"{s:.6g}" for s in self.s_points[:4])
        if len(self.s_points) > 4:
            preview += f", ... ({len(self.s_points)} points)"
        super().__init__(
            f"s-block {self.block_index} quarantined: implicated in "
            f"{self.failures} consecutive pool breaks (last reason: "
            f"{self.reason}); s-points: [{preview}]"
        )


class Backend(Protocol):
    """Anything that can evaluate a job at a batch of s-points."""

    def evaluate(self, job: TransformJob, s_points: Iterable[complex]) -> dict[complex, complex]:
        ...  # pragma: no cover - protocol definition


class SerialBackend:
    """Evaluate all s-points in the calling process via the batched engine.

    Parameters
    ----------
    record_timings:
        When true, per-s-point wall-clock durations are appended to
        :attr:`task_durations`; the Table 2 benchmark replays them through the
        simulated cluster.  The batched engine evaluates the whole grid in one
        sweep, so the measured batch time is apportioned over the points in
        proportion to the per-point work reported by the job (iteration/matvec
        counts, LU-solve equivalents) — the per-task durations keep the same
        relative shape a scalar evaluation loop would have recorded.
    """

    name = "serial"

    def __init__(self, *, record_timings: bool = False):
        self.record_timings = record_timings
        self.task_durations: list[float] = []

    def evaluate(self, job: TransformJob, s_points) -> dict[complex, complex]:
        s_list = [complex(s) for s in s_points]
        if not s_list:
            return {}
        start = time.perf_counter()
        values, costs = job.evaluate_batch(np.asarray(s_list, dtype=complex))
        elapsed = time.perf_counter() - start
        if self.record_timings:
            total_cost = float(np.sum(costs))
            if total_cost > 0:
                durations = elapsed * np.asarray(costs, dtype=float) / total_cost
            else:
                durations = np.full(len(s_list), elapsed / len(s_list))
            self.task_durations.extend(float(d) for d in durations)
        return {s: complex(v) for s, v in zip(s_list, values)}


# ---------------------------------------------------------------------------
# Multiprocessing backend.  Pool start-up attaches every worker to the shared
# kernel plane and builds the job from its JobSpec (the paper's "slaves are
# assigned the model" handshake, minus the model copy); each task message then
# carries one s-block, so the worker runs the batched engine on a
# memory-budgeted block rather than a single s-value.
# ---------------------------------------------------------------------------

_WORKER_JOB: TransformJob | None = None
_WORKER_PLANE = None
_WORKER_INCIDENT: str | None = None


def _block_worker_init(
    spec: JobSpec,
    handle: PlaneHandle,
    trace_enabled: bool = False,
    incident_dir: str | None = None,
) -> None:  # pragma: no cover - subprocess
    global _WORKER_JOB, _WORKER_PLANE, _WORKER_INCIDENT
    tracer = obs_trace.get_tracer()
    tracer.clear()  # drop spans inherited from the parent on fork
    if trace_enabled:
        tracer.enable()
    _WORKER_INCIDENT = incident_dir
    _WORKER_PLANE = handle.attach()
    _WORKER_JOB = spec.build(_WORKER_PLANE.evaluator)


def _block_worker_run(block: SBlock):  # pragma: no cover - subprocess
    assert _WORKER_JOB is not None, "worker used before initialisation"
    # Drop a started-marker before solving and remove it after: when the pool
    # breaks, the master scans the leftover markers to learn which block(s)
    # were in flight on the dead (or hung, and then terminated) worker — the
    # worker cannot report its own crash, so the blame trail must be on disk.
    marker = None
    if _WORKER_INCIDENT is not None:
        marker = os.path.join(
            _WORKER_INCIDENT, f"started.{block.index}.{os.getpid()}"
        )
        try:
            with open(marker, "w") as handle:
                handle.write(str(time.time()))
        except OSError:
            marker = None
    faults.fire("worker.solve", block=block.index, pid=os.getpid())
    registry = obs_metrics.get_metrics()
    baseline = registry.snapshot()
    started = time.perf_counter()
    with obs_trace.span("s-block", index=block.index, points=block.n_points):
        values, _ = _WORKER_JOB.evaluate_batch(block.s_points)
    elapsed = time.perf_counter() - started
    pairs = [(complex(s), complex(v)) for s, v in zip(block.s_points, values)]
    # Everything the master-side observability needs from this block: the
    # worker's finished spans and its metrics delta, shipped with the result
    # so crashes lose a block's telemetry only alongside the block itself.
    obs = {
        "spans": obs_trace.get_tracer().drain(),
        "metrics": registry.diff(baseline),
    }
    if marker is not None:
        with contextlib.suppress(OSError):
            os.unlink(marker)
    return block.index, pairs, elapsed, os.getpid(), _WORKER_JOB.last_report, obs


class MultiprocessingBackend:
    """Evaluate s-blocks on a pool of worker processes sharing one kernel plane.

    Parameters
    ----------
    processes:
        Number of worker processes (defaults to the machine's CPU count).
    block_size:
        s-points per dispatched :class:`SBlock`.  ``None`` (default) delegates
        to :meth:`SPointPolicy.dispatch_block_points` — the same memory-budget
        computation the in-process engines block by, capped so every worker
        sees about four blocks.  ``chunk_size`` is the historical alias.
    plane_store:
        When given (a :class:`~repro.smp.plane.PlaneStore` or a directory
        path), the kernel plane is exported as an mmap'd *file* under that
        directory and workers attach by digest — the serve-fleet layout.
        Default is an anonymous shared-memory segment.
    max_retries:
        How many times a broken pool is rebuilt and the unfinished blocks
        resubmitted before giving up.  Completed blocks are never recomputed
        (and, when a checkpoint is threaded through, already merged to disk).
    """

    name = "multiprocessing"
    #: pipeline capability flag: evaluate() accepts checkpoint/digest and
    #: merges each block's results as it completes
    supports_blocks = True
    #: evaluate() accepts a ProgressReporter and advances it per block
    supports_progress = True

    def __init__(
        self,
        processes: int | None = None,
        *,
        block_size: int | None = None,
        chunk_size: int | None = None,
        plane_store: PlaneStore | str | None = None,
        max_retries: int = 2,
    ):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes or os.cpu_count() or 1
        if block_size is not None and chunk_size is not None:
            raise ValueError("pass block_size or chunk_size, not both")
        size = block_size if block_size is not None else chunk_size
        if size is not None and size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = size
        if isinstance(plane_store, (str, os.PathLike)):
            plane_store = PlaneStore(plane_store)
        self.plane_store = plane_store
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.last_wall_clock: float | None = None
        #: per-worker {"blocks", "busy_seconds", "points"} of the last evaluate
        self.last_worker_stats: dict[str, dict] | None = None
        #: {"retries": {block: n}, "suspected": {block: n}} of the last evaluate
        self.last_retry_stats: dict[str, dict] | None = None
        self._plane_cache: dict[tuple[str, bool], KernelPlane] = {}

    # --------------------------------------------------------------- plumbing
    @property
    def chunk_size(self) -> int | None:
        """Historical name for :attr:`block_size`."""
        return self.block_size

    def _plane_handle(self, job: TransformJob, include_factored: bool) -> PlaneHandle:
        evaluator = job.evaluator
        digest = kernel_content_digest(job.kernel)
        with obs_trace.span(
            "plane-export",
            digest=digest,
            factored=include_factored,
            backing="file" if self.plane_store is not None else "shm",
        ):
            if include_factored:
                evaluator.factored().prewarm()
                evaluator.factored().col_structure()
            if self.plane_store is not None:
                return self.plane_store.export(
                    evaluator, include_factored=include_factored
                )
            key = (digest, include_factored)
            plane = self._plane_cache.get(key)
            if plane is None:
                plane = KernelPlane.build(
                    evaluator, backing="shm", include_factored=include_factored
                )
                self._plane_cache[key] = plane
            return plane.handle()

    def close(self) -> None:
        """Release any shared-memory planes this backend built."""
        for plane in self._plane_cache.values():
            plane.unlink()
        self._plane_cache.clear()

    # -------------------------------------------------------------------- API
    def evaluate(
        self,
        job: TransformJob,
        s_points,
        *,
        checkpoint=None,
        digest: str | None = None,
        progress=None,
    ) -> dict[complex, complex]:
        """Evaluate ``s_points``, dispatching s-blocks to the worker pool.

        When ``checkpoint`` (a :class:`~repro.distributed.checkpoint.CheckpointStore`)
        and ``digest`` are given, every completed block is merged to disk as
        it arrives, so a run that dies mid-grid resumes from the finished
        blocks rather than from nothing.  ``progress`` (a
        :class:`~repro.obs.progress.ProgressReporter`) is advanced once per
        completed block.
        """
        s_list = [complex(s) for s in np.asarray(list(s_points), dtype=complex)]
        if not s_list:
            return {}
        start = time.perf_counter()
        workers = min(self.processes, len(s_list))
        policy = job.policy or SPointPolicy()
        evaluator = job.evaluator
        engine = policy.resolve_engine(evaluator)
        if self.block_size is not None:
            block_size = min(
                self.block_size,
                policy.dispatch_block_points(
                    evaluator, engine, len(s_list), workers,
                    vector=job.kind() == "transient",
                ),
            )
        else:
            block_size = policy.dispatch_block_points(
                evaluator, engine, len(s_list), workers,
                vector=job.kind() == "transient",
            )
        include_factored = engine == "factored" and job.solver != "direct"
        handle = self._plane_handle(job, include_factored)
        spec = JobSpec.from_job(job)

        queue = SBlockQueue.from_points(s_list, block_size)
        if progress is not None:
            progress.add_total(queue.n_pending, len(s_list))
        reports: list[tuple[int, str, dict | None]] = []
        attempts = 0
        #: block index -> consecutive pool breaks it was implicated in
        suspects: dict[int, int] = {}
        watch_state = {"longest": 0.0}
        incident_dir = tempfile.mkdtemp(prefix="repro-incident-")
        try:
            while queue.n_pending:
                outstanding = queue.outstanding()
                pending_before = queue.n_pending
                with futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(outstanding)),
                    initializer=_block_worker_init,
                    initargs=(
                        spec, handle, obs_trace.get_tracer().enabled, incident_dir
                    ),
                ) as pool:
                    by_future = {
                        pool.submit(_block_worker_run, block): block
                        for block in outstanding
                    }
                    procs = dict(pool._processes or {})
                    reason, hung = self._drain(
                        by_future, queue, checkpoint, digest, reports, progress,
                        policy=policy, pool=pool, watch_state=watch_state,
                    )
                # All workers are joined once the `with` exits, so exit codes
                # are final: the worker that *caused* the break died on its
                # own (positive code, or SIGKILL e.g. the OOM killer), while
                # innocent bystanders were SIGTERMed during pool teardown.
                exitcodes = {
                    proc.pid: proc.exitcode for proc in procs.values()
                }
                if reason is None:
                    continue
                blamed = (
                    hung
                    if hung
                    else self._implicated_blocks(incident_dir, queue, exitcodes)
                )
                for index in blamed:
                    suspects[index] = suspects.get(index, 0) + 1
                # Forward progress (any block completed since the last break)
                # buys back the full retry budget — only a pool that dies
                # over and over without finishing *anything* exhausts it.
                attempts = 1 if queue.n_pending < pending_before else attempts + 1
                queue.note_retry(block.index for block in queue.outstanding())
                obs_metrics.note_block_retry(reason, queue.n_pending)
                # A block implicated in poison_after consecutive breaks is a
                # deterministic crasher: fail fast with a reproducible report
                # instead of burning pool rebuilds on it.  Checked before the
                # retry budget so the structured error wins the race.
                for index, block in sorted(queue.pending.items()):
                    if suspects.get(index, 0) >= policy.poison_after:
                        raise PoisonBlockError(
                            index, block.s_points, suspects[index], reason
                        )
                if attempts > self.max_retries:
                    raise futures.process.BrokenProcessPool(
                        f"worker pool died {attempts} time(s) without progress "
                        f"(last reason: {reason}); "
                        f"{queue.n_pending} block(s) unfinished"
                    )
        finally:
            shutil.rmtree(incident_dir, ignore_errors=True)
        self.last_retry_stats = {
            "retries": dict(queue.retries),
            "suspected": dict(suspects),
        }
        self._finalise_report(job, queue, reports)
        self.last_wall_clock = time.perf_counter() - start
        self._note_busy_fractions(self.last_wall_clock)
        return dict(queue.results)

    @staticmethod
    def _implicated_blocks(
        incident_dir: str, queue: SBlockQueue, exitcodes: dict[int, int | None]
    ) -> set[int]:
        """Which still-pending blocks killed their worker when the pool broke.

        Workers drop ``started.{block}.{pid}`` markers before solving and
        remove them after, so a leftover marker names a block that was in
        flight on a dead worker.  Only the worker whose death *broke* the
        pool is blamed — it exited on its own (positive code, or SIGKILL,
        e.g. the OOM killer); every other in-flight worker was SIGTERMed
        (-15) by pool teardown and its block is an innocent bystander.  All
        markers are consumed per scan so the next break starts clean.
        """
        teardown = -int(signal.SIGTERM)
        pending = set(queue.pending)
        blamed: set[int] = set()
        try:
            names = os.listdir(incident_dir)
        except OSError:
            return blamed
        for name in names:
            parts = name.split(".")
            if len(parts) == 3 and parts[0] == "started":
                with contextlib.suppress(ValueError):
                    index, pid = int(parts[1]), int(parts[2])
                    code = exitcodes.get(pid)
                    if (
                        index in pending
                        and code is not None
                        and code not in (0, teardown)
                    ):
                        blamed.add(index)
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(incident_dir, name))
        return blamed

    def _drain(
        self,
        by_future,
        queue,
        checkpoint,
        digest,
        reports,
        progress=None,
        *,
        policy: SPointPolicy | None = None,
        pool=None,
        watch_state: dict | None = None,
    ) -> tuple[str | None, set[int]]:
        """Process completions until the pool drains.

        Returns ``(reason, hung_blocks)``: reason is ``None`` on a clean
        drain, ``"crashed"`` when the pool broke on its own, ``"hung"`` when
        the watchdog killed it.  Results that finished before a break are
        kept (and checkpointed), so a retry only re-runs the genuinely
        unfinished blocks.  Each completed block is recorded exactly once
        here — telemetry (global per-worker counters, queue-depth gauge,
        progress, worker spans and metric deltas) rides the same path as the
        results, so a pool rebuild neither loses nor double-counts it.

        The watchdog: a worker that stops making progress (deadlocked solve,
        injected hang) never completes its future, so the pool would wait
        forever.  Every poll tick the master compares each running block's
        age against ``max(watchdog_floor_seconds, watchdog_multiplier x
        longest completed block so far)``; a block past the deadline gets its
        whole pool terminated and is retried/suspected like a crash.
        """
        registry = obs_metrics.get_metrics()
        depth_gauge = registry.gauge(
            "repro_sblocks_pending", "s-blocks not yet completed"
        )
        depth_gauge.set(queue.n_pending)
        broken = False
        hung: set[int] = set()
        not_done = set(by_future)
        started_at: dict = {}
        if watch_state is None:
            watch_state = {"longest": 0.0}
        mult = policy.watchdog_multiplier if policy is not None else 0.0
        floor = policy.watchdog_floor_seconds if policy is not None else 30.0
        watchdog_on = pool is not None and mult > 0
        poll = min(1.0, max(0.05, floor / 20.0)) if watchdog_on else None
        while not_done:
            done, not_done = futures.wait(
                not_done, timeout=poll, return_when=futures.FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in done:
                block = by_future[future]
                started_at.pop(future, None)
                error = future.exception()
                if error is not None:
                    if isinstance(error, futures.process.BrokenProcessPool):
                        broken = True
                        continue
                    raise error
                index, pairs, elapsed, pid, report, obs = future.result()
                watch_state["longest"] = max(watch_state["longest"], elapsed)
                values = {s: v for s, v in pairs}
                queue.complete(block, values, worker=pid, duration=elapsed)
                reports.append((index, str(pid), report))
                obs_trace.get_tracer().absorb(obs.get("spans"))
                registry.absorb(obs.get("metrics"))
                obs_metrics.record_worker_block(
                    pid, block.n_points, elapsed, registry=registry
                )
                depth_gauge.set(queue.n_pending)
                if progress is not None:
                    progress.advance(1, block.n_points)
                if checkpoint is not None and digest is not None:
                    try:
                        checkpoint.merge(digest, values)
                    except OSError as exc:
                        # A full disk must not kill an in-memory computation;
                        # the block's results stay in the queue, only their
                        # durability is lost.
                        logger.warning(
                            "checkpoint merge failed for block %d: %s "
                            "(continuing without durability)", index, exc,
                        )
            if watchdog_on and not broken and not_done:
                for future in not_done:
                    if future not in started_at and future.running():
                        started_at[future] = now
                deadline = max(floor, mult * watch_state["longest"])
                expired = [
                    future for future, t0 in started_at.items()
                    if future in not_done and now - t0 > deadline
                ]
                if expired:
                    hung.update(by_future[future].index for future in expired)
                    logger.warning(
                        "watchdog: block(s) %s still running after %.1fs "
                        "deadline; terminating worker pool",
                        sorted(hung), deadline,
                    )
                    for proc in list((pool._processes or {}).values()):
                        with contextlib.suppress(Exception):
                            proc.terminate()
                    broken = True
        if hung:
            return "hung", hung
        return ("crashed", set()) if broken else (None, set())

    def _note_busy_fractions(self, wall_clock: float) -> None:
        """Per-worker busy fraction of the evaluate that just finished."""
        if not wall_clock or not self.last_worker_stats:
            return
        gauge = obs_metrics.get_metrics().gauge(
            "repro_worker_busy_fraction",
            "busy seconds / wall-clock of the last pool evaluate",
            ("worker",),
        )
        for worker, entry in self.last_worker_stats.items():
            gauge.set(
                min(entry["busy_seconds"] / wall_clock, 1.0), worker=str(worker)
            )

    def _finalise_report(self, job, queue: SBlockQueue, reports) -> None:
        """Aggregate the workers' engine reports onto the master-side job."""
        blocks: list[dict] = []
        engine = None
        for index, pid, report in sorted(reports, key=lambda r: r[0]):
            if not report:
                continue
            engine = report.get("engine", engine)
            for entry in report.get("blocks", []):
                entry = dict(entry)
                entry["worker"] = pid
                blocks.append(entry)
        self.last_worker_stats = queue.worker_stats()
        job.last_report = {
            "engine": engine,
            "blocks": blocks,
            "workers": self.last_worker_stats,
        }