"""A deterministic timing model of the paper's master/slave cluster.

The paper's scalability experiment (Table 2) ran on a departmental network of
Pentium 4 slaves; that hardware is obviously not available here, so the
*shape* of the experiment is reproduced from first principles instead: a
list-scheduling model in which

* the master spends ``dispatch_overhead`` seconds of serialised work per task
  (handing out the s-value and receiving/caching the result),
* each task additionally pays ``network_latency`` seconds of latency per
  round trip,
* each slave executes one task at a time, taking the task's measured compute
  duration (scaled by ``slave_speed``).

Because slaves never talk to each other, the only sources of efficiency loss
are the serialised master work and the tail imbalance of the final tasks —
exactly the behaviour reported in the paper (efficiency 1.00 -> 0.71 going
from 1 to 32 slaves).
"""
from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ClusterTiming", "SimulatedCluster", "ScalabilityRow", "scalability_table", "relative_timing"]


@dataclass(frozen=True)
class ClusterTiming:
    """Cost parameters of the simulated cluster.

    Defaults are loosely modelled on the paper's environment (100 Mbit
    Ethernet, a master that only hands out s-values and caches results).
    """

    dispatch_overhead: float = 0.003   # serialised master seconds per task
    network_latency: float = 0.002     # seconds added to each task round trip
    slave_speed: float = 1.0           # >1 means slaves faster than measured durations

    def __post_init__(self):
        if self.dispatch_overhead < 0 or self.network_latency < 0:
            raise ValueError("overheads must be non-negative")
        if self.slave_speed <= 0:
            raise ValueError("slave_speed must be positive")


class SimulatedCluster:
    """List-scheduling simulation of a master/slave s-point farm."""

    name = "simulated-cluster"

    def __init__(self, n_slaves: int, timing: ClusterTiming | None = None):
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        self.n_slaves = int(n_slaves)
        self.timing = timing or ClusterTiming()

    def makespan(self, task_durations: Sequence[float]) -> float:
        """Wall-clock time to drain the queue of tasks on this cluster.

        Tasks are handed out in queue order: the master serialises
        ``dispatch_overhead`` per task, the chosen (earliest-free) slave then
        spends ``duration / slave_speed + network_latency``.
        """
        durations = np.asarray(list(task_durations), dtype=float)
        if durations.size == 0:
            return 0.0
        if np.any(durations < 0):
            raise ValueError("task durations must be non-negative")
        timing = self.timing
        # Earliest-availability heap of slaves.
        slaves = [0.0] * self.n_slaves
        heapq.heapify(slaves)
        master_clock = 0.0
        finish = 0.0
        for duration in durations:
            master_clock += timing.dispatch_overhead
            slave_free = heapq.heappop(slaves)
            start = max(master_clock, slave_free)
            end = start + duration / timing.slave_speed + timing.network_latency
            heapq.heappush(slaves, end)
            finish = max(finish, end)
        return float(finish)


@dataclass
class ScalabilityRow:
    """One row of the Table 2 reproduction."""

    slaves: int
    time_seconds: float
    speedup: float
    efficiency: float

    def as_tuple(self) -> tuple[int, float, float, float]:
        return (self.slaves, self.time_seconds, self.speedup, self.efficiency)


def relative_timing(
    task_durations: Sequence[float],
    *,
    dispatch_fraction: float = 0.004,
    latency_fraction: float = 0.002,
) -> ClusterTiming:
    """Overheads expressed as a fraction of the mean task duration.

    The paper's per-s-point tasks took seconds of C++ compute on models of
    10^5–10^6 states while its master/network overheads were milliseconds —
    i.e. a fraction of a percent of the task granularity.  Our Python tasks on
    the reduced models are much shorter in absolute terms, so expressing the
    overheads *relative* to the measured task duration preserves the paper's
    compute-to-communication ratio and therefore the shape of Table 2.
    """
    durations = np.asarray(list(task_durations), dtype=float)
    mean = float(durations.mean()) if durations.size else 1.0
    return ClusterTiming(
        dispatch_overhead=dispatch_fraction * mean,
        network_latency=latency_fraction * mean,
    )


def scalability_table(
    task_durations: Sequence[float],
    slave_counts: Iterable[int] = (1, 8, 16, 32),
    *,
    timing: ClusterTiming | None = None,
) -> list[ScalabilityRow]:
    """Reproduce Table 2: time, speedup and efficiency per slave count.

    ``task_durations`` are the measured per-s-point compute times (e.g. from a
    :class:`~repro.distributed.backends.SerialBackend` with
    ``record_timings=True``); the single-slave run defines the baseline.
    When ``timing`` is omitted the overheads are scaled to the measured task
    granularity via :func:`relative_timing`.
    """
    slave_counts = [int(c) for c in slave_counts]
    if any(c < 1 for c in slave_counts):
        raise ValueError("slave counts must be >= 1")
    if timing is None:
        timing = relative_timing(task_durations)
    baseline = SimulatedCluster(1, timing).makespan(task_durations)
    rows = []
    for count in slave_counts:
        elapsed = SimulatedCluster(count, timing).makespan(task_durations)
        speedup = baseline / elapsed if elapsed > 0 else float("nan")
        rows.append(
            ScalabilityRow(
                slaves=count,
                time_seconds=elapsed,
                speedup=speedup,
                efficiency=speedup / count,
            )
        )
    return rows
