"""On-disk checkpointing of computed transform values.

The paper's pipeline caches every returned ``L(s)`` value "both in memory and
on disk so that all computation is checkpointed": a crashed or interrupted
analysis resumes without recomputing completed s-points.  The store below
keeps one JSON file per (model, measure) digest under a checkpoint directory.

Integrity: each file wraps its values with a CRC32 over their canonical JSON
encoding.  A file that fails the checksum (bit rot, a torn pre-atomic-rename
write, an injected corruption) is *quarantined* — renamed to ``*.corrupt``
and counted in ``repro_corrupt_artifacts_total{kind="checkpoint"}`` — and the
measure recomputes from source instead of propagating garbage.  Files written
before the wrapper existed (a flat s->value object) still load.
"""
from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
import zlib
from pathlib import Path

from .. import faults
from ..obs.metrics import note_corrupt_artifact

try:  # POSIX; absent on some platforms (the O_EXCL fallback covers those)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX only
    fcntl = None

from ..laplace.inverter import canonical_s

__all__ = ["CheckpointStore"]


@contextlib.contextmanager
def _interprocess_lock(path: Path):
    """Hold an exclusive lock file while mutating a checkpoint file.

    ``merge`` is a read-modify-write of the whole per-digest file; two
    concurrent writers (multiprocessing backend workers, or two server
    processes sharing a checkpoint directory) that interleave ``load`` and
    ``os.replace`` would silently drop each other's s-points.  ``flock`` on a
    sidecar lock file serialises them (including two descriptors within one
    process).  Where ``fcntl`` is unavailable, an ``O_EXCL`` create-spin is
    used instead, with stale locks (a writer killed mid-merge) stolen after a
    timeout.
    """
    if fcntl is not None:
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        return
    # O_EXCL create-spin fallback.  Staleness is judged by the *lock file's*
    # age (its holder created it at mtime), never by how long this waiter has
    # been spinning — a waiter-side deadline would eventually unlink a live
    # holder's lock and break mutual exclusion under long contention.
    stale_after = 30.0  # pragma: no cover - non-POSIX only
    while True:  # pragma: no cover - non-POSIX only
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except FileExistsError:
            try:
                held_for = time.time() - os.path.getmtime(path)
            except OSError:
                continue  # holder released between open and stat; retry now
            if held_for > stale_after:
                # The holder almost certainly died mid-merge (a live merge is
                # milliseconds); remove its leftover lock and race to
                # recreate a fresh one.
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(path)
            time.sleep(0.005)
    try:  # pragma: no cover - non-POSIX only
        yield
    finally:  # pragma: no cover - non-POSIX only
        os.close(fd)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(path)


def _encode(s: complex) -> str:
    return f"{s.real!r},{s.imag!r}"


def _decode(text: str) -> complex:
    real, imag = text.split(",")
    return complex(float(real), float(imag))


def _canonical_body(payload: dict) -> bytes:
    """The byte string the checkpoint CRC covers.

    ``json.loads``/``json.dumps`` round-trip floats exactly (``repr``-based),
    so re-encoding the parsed values with the same canonical options yields
    the same bytes the writer hashed.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


class CheckpointStore:
    """A directory of JSON files mapping s-points to transform values."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        safe = "".join(c for c in digest if c.isalnum() or c in "-_")
        if not safe:
            raise ValueError("digest must contain at least one filename-safe character")
        return self.directory / f"{safe}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a failed-integrity file aside and count it (never re-read).

        ``reason`` is diagnostic only (it keeps call sites self-describing);
        the metric is keyed by artifact kind.
        """
        target = path.with_name(path.name + ".corrupt")
        with contextlib.suppress(OSError):
            os.replace(path, target)
        note_corrupt_artifact("checkpoint")

    # ------------------------------------------------------------------ API
    def load(self, digest: str) -> dict[complex, complex]:
        """All checkpointed values for this measure (empty dict when none).

        A file that does not parse, or whose CRC32 does not match its values,
        is quarantined (renamed ``*.corrupt``) so the measure starts afresh —
        a corrupt artifact must never feed garbage into an analysis.
        """
        faults.fire("checkpoint.load", digest=digest)
        path = self._path(digest)
        if not path.exists():
            return {}
        try:
            raw = json.loads(path.read_bytes())
        except OSError:
            return {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            # A torn write (e.g. the process was killed mid-checkpoint before
            # the atomic-rename scheme below was in place) must not poison the
            # whole analysis: quarantine and start that measure afresh.
            self._quarantine(path, "unparseable")
            return {}
        if isinstance(raw, dict) and "crc32" in raw and "values" in raw:
            payload = raw["values"]
            if zlib.crc32(_canonical_body(payload)) != raw["crc32"]:
                self._quarantine(path, "checksum-mismatch")
                return {}
        else:
            payload = raw  # pre-checksum flat file
        try:
            return {_decode(k): complex(v[0], v[1]) for k, v in payload.items()}
        except (AttributeError, ValueError, TypeError, IndexError):
            self._quarantine(path, "malformed")
            return {}

    def merge(self, digest: str, values: dict[complex, complex]) -> None:
        """Merge ``values`` into the checkpoint file (atomic rewrite).

        The whole read-modify-write is serialised per digest across processes
        (and threads) by a lock file; the final ``os.replace`` stays atomic so
        readers never observe a torn file even without taking the lock.
        """
        if not values:
            return
        faults.fire("checkpoint.merge", digest=digest)
        path = self._path(digest)
        with _interprocess_lock(path.with_suffix(".lock")):
            current = self.load(digest)
            current.update({canonical_s(k): complex(v) for k, v in values.items()})
            payload = {_encode(k): [v.real, v.imag] for k, v in current.items()}
            body = _canonical_body(payload)
            data = json.dumps(
                {"crc32": zlib.crc32(body), "values": payload},
                sort_keys=True, separators=(",", ":"),
            ).encode()
            data = faults.mangle("checkpoint.merge", data, digest=digest)
            fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                faults.fire("checkpoint.replace", digest=digest)
                os.replace(tmp_name, path)
            except BaseException:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
                raise

    def clear(self, digest: str) -> None:
        path = self._path(digest)
        with _interprocess_lock(path.with_suffix(".lock")):
            if path.exists():
                path.unlink()

    def release_artifacts(self) -> None:
        """Remove sidecar lock files and orphaned temp files (best effort).

        ``flock`` sidecars stay on disk by design (unlinking a lock file
        while another process holds it would break mutual exclusion), and a
        writer killed between ``mkstemp`` and ``os.replace`` leaves its temp
        file behind.  Call this only when no writer can be active — graceful
        shutdown, or after a chaos run — to hand back a clean directory.
        """
        for pattern in ("*.lock", "*.tmp"):
            for path in self.directory.glob(pattern):
                with contextlib.suppress(OSError):
                    path.unlink()

    def count(self, digest: str) -> int:
        """Number of checkpointed s-points for this measure.

        Used by the async-job runner to report, at (re)start, how much of a
        measure is already durable — a resumed job's progress view shows how
        many points the previous run banked before dying.
        """
        return len(self.load(digest))

    def digests(self) -> list[str]:
        """All measures with checkpoint files in this store."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def size_bytes(self, digest: str) -> int:
        path = self._path(digest)
        return path.stat().st_size if path.exists() else 0
