"""On-disk checkpointing of computed transform values.

The paper's pipeline caches every returned ``L(s)`` value "both in memory and
on disk so that all computation is checkpointed": a crashed or interrupted
analysis resumes without recomputing completed s-points.  The store below
keeps one JSON file per (model, measure) digest under a checkpoint directory.
"""
from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..laplace.inverter import canonical_s

__all__ = ["CheckpointStore"]


def _encode(s: complex) -> str:
    return f"{s.real!r},{s.imag!r}"


def _decode(text: str) -> complex:
    real, imag = text.split(",")
    return complex(float(real), float(imag))


class CheckpointStore:
    """A directory of JSON files mapping s-points to transform values."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        safe = "".join(c for c in digest if c.isalnum() or c in "-_")
        if not safe:
            raise ValueError("digest must contain at least one filename-safe character")
        return self.directory / f"{safe}.json"

    # ------------------------------------------------------------------ API
    def load(self, digest: str) -> dict[complex, complex]:
        """All checkpointed values for this measure (empty dict when none)."""
        path = self._path(digest)
        if not path.exists():
            return {}
        try:
            raw = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            # A torn write (e.g. the process was killed mid-checkpoint before
            # the atomic-rename scheme below was in place) must not poison the
            # whole analysis: start that measure afresh.
            return {}
        return {_decode(k): complex(v[0], v[1]) for k, v in raw.items()}

    def merge(self, digest: str, values: dict[complex, complex]) -> None:
        """Merge ``values`` into the checkpoint file (atomic rewrite)."""
        if not values:
            return
        current = self.load(digest)
        current.update({canonical_s(k): complex(v) for k, v in values.items()})
        payload = {_encode(k): [v.real, v.imag] for k, v in current.items()}
        path = self._path(digest)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def clear(self, digest: str) -> None:
        path = self._path(digest)
        if path.exists():
            path.unlink()

    def digests(self) -> list[str]:
        """All measures with checkpoint files in this store."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def size_bytes(self, digest: str) -> int:
        path = self._path(digest)
        return path.stat().st_size if path.exists() else 0
