"""The master's global work queues: scalar s-points and dispatched s-blocks."""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..laplace.inverter import canonical_s

__all__ = [
    "WorkItem",
    "SPointWorkQueue",
    "SBlock",
    "SBlockQueue",
]


@dataclass
class WorkItem:
    """One outstanding transform evaluation."""

    s: complex
    #: wall-clock seconds the evaluation took (filled in on completion)
    duration: float | None = None
    #: identifier of the worker that served the item (diagnostics only)
    worker: str | None = None


@dataclass
class SPointWorkQueue:
    """A simple FIFO of s-points with completion bookkeeping.

    The master deduplicates the s-points (canonically rounded, conjugate
    pairs folded by the caller when applicable) before enqueueing, mirrors
    completions into ``results`` and keeps per-item timing so that the
    simulated-cluster backend can replay realistic task durations.
    """

    pending: list[WorkItem] = field(default_factory=list)
    completed: list[WorkItem] = field(default_factory=list)
    results: dict[complex, complex] = field(default_factory=dict)

    def put(self, s_points) -> int:
        """Enqueue the not-yet-known s-points; returns how many were added."""
        added = 0
        known = {canonical_s(item.s) for item in self.pending}
        known.update(canonical_s(item.s) for item in self.completed)
        for s in np.asarray(list(s_points), dtype=complex):
            key = canonical_s(s)
            if key in known:
                continue
            known.add(key)
            self.pending.append(WorkItem(s=complex(s)))
            added += 1
        return added

    def take(self, count: int = 1) -> list[WorkItem]:
        """Remove and return up to ``count`` items from the front of the queue."""
        if count < 1:
            raise ValueError("count must be >= 1")
        taken, self.pending = self.pending[:count], self.pending[count:]
        return taken

    def complete(self, item: WorkItem, value: complex, *, duration: float | None = None,
                 worker: str | None = None) -> None:
        item.duration = duration
        item.worker = worker
        self.completed.append(item)
        self.results[canonical_s(item.s)] = complex(value)

    # -------------------------------------------------------------- queries
    @property
    def n_pending(self) -> int:
        return len(self.pending)

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    def value_of(self, s: complex) -> complex:
        return self.results[canonical_s(s)]

    def durations(self) -> np.ndarray:
        """Per-task durations of all completed items that recorded timing."""
        return np.asarray(
            [item.duration for item in self.completed if item.duration is not None], dtype=float
        )


@dataclass
class SBlock:
    """The unit of dispatch of the block-granular execution stack.

    PR 5's memory-budgeted s-block promoted from an engine-internal loop
    bound to a first-class work unit: a block id plus the *exact* contour
    points it covers.  A block is what gets pickled to a worker (alongside
    the one-time :class:`~repro.core.jobs.JobSpec`), what gets retried when
    a worker dies, and the granularity at which results are merged into the
    checkpoint — never the whole grid, never single scalars.
    """

    index: int
    s_points: np.ndarray

    def __post_init__(self):
        self.s_points = np.asarray(self.s_points, dtype=complex).ravel()

    @property
    def n_points(self) -> int:
        return int(self.s_points.size)


@dataclass
class SBlockQueue:
    """Completion bookkeeping for dispatched s-blocks.

    Tracks which blocks are outstanding so a broken pool can be rebuilt and
    only the unfinished blocks resubmitted, and records which worker served
    each block (plus its busy time) for the scalability statistics.
    """

    pending: dict[int, SBlock] = field(default_factory=dict)
    #: block index -> (worker label, busy seconds, points served)
    served_by: dict[int, tuple[str, float, int]] = field(default_factory=dict)
    results: dict[complex, complex] = field(default_factory=dict)
    #: block index -> times the block was resubmitted after a pool break
    retries: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_points(cls, s_points, block_size: int) -> "SBlockQueue":
        s_points = np.asarray(list(s_points), dtype=complex)
        queue = cls()
        for index, lo in enumerate(range(0, s_points.size, int(block_size))):
            queue.pending[index] = SBlock(index, s_points[lo : lo + int(block_size)])
        return queue

    @property
    def n_pending(self) -> int:
        return len(self.pending)

    @property
    def n_completed(self) -> int:
        return len(self.served_by)

    def outstanding(self) -> list[SBlock]:
        return [self.pending[i] for i in sorted(self.pending)]

    def complete(
        self,
        block: SBlock,
        values: dict[complex, complex],
        *,
        worker: str = "?",
        duration: float = 0.0,
    ) -> None:
        self.pending.pop(block.index, None)
        self.served_by[block.index] = (str(worker), float(duration), block.n_points)
        self.results.update(values)

    def note_retry(self, indexes) -> None:
        """Record that these still-pending blocks are being resubmitted."""
        for index in indexes:
            self.retries[index] = self.retries.get(index, 0) + 1

    def worker_stats(self) -> dict[str, dict]:
        """Per-worker block counts, points and busy time, keyed by worker label."""
        stats: dict[str, dict] = {}
        for worker, seconds, points in self.served_by.values():
            entry = stats.setdefault(
                worker, {"blocks": 0, "points": 0, "busy_seconds": 0.0}
            )
            entry["blocks"] += 1
            entry["points"] += points
            entry["busy_seconds"] += seconds
        for entry in stats.values():
            entry["busy_seconds"] = round(entry["busy_seconds"], 6)
        return stats
