"""The master's global work queue of outstanding s-point evaluations."""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..laplace.inverter import canonical_s

__all__ = ["WorkItem", "SPointWorkQueue"]


@dataclass
class WorkItem:
    """One outstanding transform evaluation."""

    s: complex
    #: wall-clock seconds the evaluation took (filled in on completion)
    duration: float | None = None
    #: identifier of the worker that served the item (diagnostics only)
    worker: str | None = None


@dataclass
class SPointWorkQueue:
    """A simple FIFO of s-points with completion bookkeeping.

    The master deduplicates the s-points (canonically rounded, conjugate
    pairs folded by the caller when applicable) before enqueueing, mirrors
    completions into ``results`` and keeps per-item timing so that the
    simulated-cluster backend can replay realistic task durations.
    """

    pending: list[WorkItem] = field(default_factory=list)
    completed: list[WorkItem] = field(default_factory=list)
    results: dict[complex, complex] = field(default_factory=dict)

    def put(self, s_points) -> int:
        """Enqueue the not-yet-known s-points; returns how many were added."""
        added = 0
        known = {canonical_s(item.s) for item in self.pending}
        known.update(canonical_s(item.s) for item in self.completed)
        for s in np.asarray(list(s_points), dtype=complex):
            key = canonical_s(s)
            if key in known:
                continue
            known.add(key)
            self.pending.append(WorkItem(s=complex(s)))
            added += 1
        return added

    def take(self, count: int = 1) -> list[WorkItem]:
        """Remove and return up to ``count`` items from the front of the queue."""
        if count < 1:
            raise ValueError("count must be >= 1")
        taken, self.pending = self.pending[:count], self.pending[count:]
        return taken

    def complete(self, item: WorkItem, value: complex, *, duration: float | None = None,
                 worker: str | None = None) -> None:
        item.duration = duration
        item.worker = worker
        self.completed.append(item)
        self.results[canonical_s(item.s)] = complex(value)

    # -------------------------------------------------------------- queries
    @property
    def n_pending(self) -> int:
        return len(self.pending)

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    def value_of(self, s: complex) -> complex:
        return self.results[canonical_s(s)]

    def durations(self) -> np.ndarray:
        """Per-task durations of all completed items that recorded timing."""
        return np.asarray(
            [item.duration for item in self.completed if item.duration is not None], dtype=float
        )
