"""The master process: queue management, checkpointing and final inversion."""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.jobs import TransformJob
from ..core.results import PassageTimeResult, TransientResult
from ..laplace import get_inverter
from ..laplace.inverter import canonical_s, conjugate_reduced, expand_to_grid
from ..obs import trace as obs_trace
from ..obs.metrics import merge_worker_stats
from ..utils.timing import Stopwatch
from .backends import SerialBackend
from .checkpoint import CheckpointStore
from .queue import SPointWorkQueue

__all__ = ["DistributedPipeline", "PipelineStatistics"]


@dataclass
class PipelineStatistics:
    """Bookkeeping of one pipeline run (what Table 2 measures)."""

    s_points_required: int = 0
    s_points_computed: int = 0
    s_points_from_cache: int = 0
    conjugates_folded: int = 0
    evaluation_seconds: float = 0.0
    inversion_seconds: float = 0.0
    task_durations: list[float] = field(default_factory=list)
    #: per-worker {"blocks", "points", "busy_seconds"} from block-dispatching
    #: backends (empty for in-process backends)
    workers: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.evaluation_seconds + self.inversion_seconds


class DistributedPipeline:
    """Master-side orchestration of a passage-time / transient analysis.

    Parameters
    ----------
    job:
        The transform-evaluation job (kernel + sources + targets + options).
    inversion:
        Inversion algorithm name, ``"euler"`` or ``"laguerre"``.
    backend:
        Execution backend; defaults to a timing-recording serial backend.
    checkpoint:
        Optional :class:`CheckpointStore`; when given, previously computed
        s-points are loaded before dispatch and new results are merged back
        after, so an interrupted analysis resumes where it stopped.
    fold_conjugates:
        Exploit ``L(conj(s)) = conj(L(s))`` to halve the work for grids that
        include conjugate pairs (the Laguerre contour); the Euler grid lies in
        the upper half plane already, so folding is a no-op there.
    progress:
        Optional :class:`~repro.obs.progress.ProgressReporter`.  Backends
        that dispatch s-blocks advance it per completed block; other
        backends advance it per evaluation round.
    """

    def __init__(
        self,
        job: TransformJob,
        *,
        inversion: str = "euler",
        inverter_options: dict | None = None,
        backend=None,
        checkpoint: CheckpointStore | None = None,
        fold_conjugates: bool = True,
        progress=None,
    ):
        self.job = job
        self.inverter = get_inverter(inversion, **(inverter_options or {}))
        self.backend = backend if backend is not None else SerialBackend(record_timings=True)
        self.checkpoint = checkpoint
        self.fold_conjugates = fold_conjugates
        self.progress = progress
        self.queue = SPointWorkQueue()
        self.statistics = PipelineStatistics()
        self._values: dict[complex, complex] = {}
        self._required_seen: set[complex] = set()

    # ----------------------------------------------------------- internals
    def _gather_values(self, t_points: np.ndarray) -> dict[complex, complex]:
        stats = self.statistics
        required = self.inverter.required_s_points(t_points)

        # Statistics count each distinct s-point once per pipeline run,
        # however many measures re-request it: density() and cdf() share one
        # grid, so a point the pipeline already accounted for is neither
        # "required" again nor a phantom cache hit.  Bookkeeping (seen set and
        # counters) is committed only after evaluation succeeds, so a failed
        # backend run leaves the pipeline retryable.
        new_seen: set[complex] = set()
        new_required = []
        for s in required:
            key = canonical_s(s)
            if key not in self._required_seen and key not in new_seen:
                new_seen.add(key)
                new_required.append(complex(s))

        wanted = (
            conjugate_reduced(new_required)
            if self.fold_conjugates
            else np.asarray(new_required, dtype=complex)
        )

        # Seed from the in-memory cache and the on-disk checkpoint.
        if self.checkpoint is not None:
            for s, v in self.checkpoint.load(self.job.digest()).items():
                self._values.setdefault(canonical_s(s), complex(v))

        cache_hits = 0
        missing = []
        for s in wanted:
            if canonical_s(s) in self._values:
                # A true cache hit: a point this run never dispatched was
                # already available (e.g. loaded from the checkpoint).
                cache_hits += 1
            else:
                missing.append(complex(s))

        if missing:
            self.queue.put(missing)
            items = self.queue.take(self.queue.n_pending)
            stopwatch = Stopwatch()
            block_granular = getattr(self.backend, "supports_blocks", False)
            block_progress = getattr(self.backend, "supports_progress", False)
            if self.progress is not None and not block_progress:
                self.progress.add_total(1, len(items))
            with stopwatch, obs_trace.span(
                "evaluate", n_points=len(items),
                backend=getattr(self.backend, "name", type(self.backend).__name__),
            ):
                if block_granular:
                    # Block-dispatching backends merge each completed block
                    # into the checkpoint as it arrives, so a crash mid-grid
                    # resumes from the finished blocks.
                    extra = (
                        {"progress": self.progress} if block_progress else {}
                    )
                    computed = self.backend.evaluate(
                        self.job,
                        [item.s for item in items],
                        checkpoint=self.checkpoint,
                        digest=self.job.digest() if self.checkpoint else None,
                        **extra,
                    )
                else:
                    computed = self.backend.evaluate(
                        self.job, [item.s for item in items]
                    )
            if self.progress is not None and not block_progress:
                self.progress.advance(1, len(items))
            stats.evaluation_seconds += stopwatch.elapsed
            durations = getattr(self.backend, "task_durations", None)
            if durations:
                new = durations[-len(items):]
                stats.task_durations.extend(new)
            merge_worker_stats(
                stats.workers, getattr(self.backend, "last_worker_stats", None)
            )
            for item in items:
                value = computed[item.s]
                self.queue.complete(item, value)
                self._values[canonical_s(item.s)] = complex(value)
            stats.s_points_computed += len(items)
            if self.checkpoint is not None and not block_granular:
                self.checkpoint.merge(self.job.digest(), computed)

        # Every wanted point is now in _values — commit the bookkeeping.
        self._required_seen |= new_seen
        stats.s_points_required += len(new_required)
        stats.conjugates_folded += len(new_required) - len(wanted)
        stats.s_points_from_cache += cache_hits

        # Expand the folded conjugates back out and key the result by the
        # exact s-points the inverter asked for.
        return expand_to_grid(required, self._values)

    # ------------------------------------------------------------------ API
    def transform_values(self) -> dict[complex, complex]:
        """The transform values gathered so far, keyed by canonical s-point."""
        return dict(self._values)

    def density(self, t_points) -> np.ndarray:
        """Invert the measure's transform into a density/probability curve."""
        t_points = np.asarray(list(t_points), dtype=float)
        values = self._gather_values(t_points)
        stopwatch = Stopwatch()
        with stopwatch, obs_trace.span(
            "inversion", method=self.inverter.name, n_t_points=int(t_points.size)
        ):
            result = self.inverter.invert_values(t_points, values)
        self.statistics.inversion_seconds += stopwatch.elapsed
        return result

    def cdf(self, t_points) -> np.ndarray:
        """Invert ``L(s)/s`` — the cumulative distribution (passage jobs only)."""
        t_points = np.asarray(list(t_points), dtype=float)
        values = self._gather_values(t_points)
        cdf_values = {s: v / s for s, v in values.items() if s != 0}
        stopwatch = Stopwatch()
        with stopwatch, obs_trace.span(
            "inversion", method=self.inverter.name, n_t_points=int(t_points.size),
            measure="cdf",
        ):
            result = self.inverter.invert_values(t_points, cdf_values)
        self.statistics.inversion_seconds += stopwatch.elapsed
        return result

    def run(self, t_points, *, include_cdf: bool | None = None):
        """Full analysis over ``t_points`` returning a result object.

        Passage jobs yield a :class:`PassageTimeResult` (density + CDF);
        transient jobs yield a :class:`TransientResult`.
        """
        t_points = np.asarray(list(t_points), dtype=float)
        kind = self.job.kind()
        if kind == "passage":
            density = self.density(t_points)
            cdf = self.cdf(t_points) if (include_cdf is None or include_cdf) else None
            return PassageTimeResult(
                t_points=t_points,
                density=density,
                cdf=cdf,
                transform_values=dict(self._values),
                method=self.inverter.name,
                statistics=self.statistics_summary(),
            )
        probability = self.density(t_points)
        return TransientResult(
            t_points=t_points,
            probability=probability,
            steady_state=None,
            transform_values=dict(self._values),
            method=self.inverter.name,
            statistics=self.statistics_summary(),
        )

    def statistics_summary(self) -> dict:
        stats = self.statistics
        summary = {
            "s_points_required": stats.s_points_required,
            "s_points_computed": stats.s_points_computed,
            "s_points_from_cache": stats.s_points_from_cache,
            "conjugates_folded": stats.conjugates_folded,
            "evaluation_seconds": stats.evaluation_seconds,
            "inversion_seconds": stats.inversion_seconds,
            "backend": getattr(self.backend, "name", type(self.backend).__name__),
        }
        if stats.workers:
            summary["workers"] = {k: dict(v) for k, v in stats.workers.items()}
        return summary
