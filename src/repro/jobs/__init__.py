"""Durable async jobs with multi-tenant namespaces and pluggable storage.

Long solves do not belong on an open HTTP socket: ``POST /v1/passage`` with
``"async": true`` enqueues the query as a *job* and returns ``202`` with a
``/v1/jobs/{id}`` handle immediately.  This package provides the three
pieces behind that surface:

* :mod:`repro.jobs.store` — the append-only job log (``queued -> running ->
  done | failed | cancelled``) over a pluggable backend
  (:class:`MemoryBackend` in-process, :class:`SqliteBackend` durable under
  the checkpoint directory), replayed to a consistent state on restart;
* :mod:`repro.jobs.runner` — the background executor draining the queue
  through the coalescing scheduler / block pipeline, feeding per-block
  progress, honouring cancellation between blocks and resuming re-queued
  jobs from their checkpointed blocks;
* :mod:`repro.jobs.tenancy` — tenant validation, per-tenant quotas (active
  jobs, registered models) and token-bucket rate limiting.
"""
from .runner import JobCancelled, JobDrained, JobRunner
from .store import (
    JOB_STATES,
    TERMINAL_STATES,
    JobBackend,
    JobRecord,
    JobStore,
    JobStoreError,
    MemoryBackend,
    SqliteBackend,
    open_backend,
)
from .tenancy import (
    DEFAULT_TENANT,
    QuotaError,
    TenancyManager,
    TenantError,
    TenantQuotas,
    TokenBucket,
    validate_tenant,
)

__all__ = [
    "DEFAULT_TENANT",
    "JOB_STATES",
    "JobBackend",
    "JobCancelled",
    "JobDrained",
    "JobRecord",
    "JobRunner",
    "JobStore",
    "JobStoreError",
    "MemoryBackend",
    "QuotaError",
    "SqliteBackend",
    "TERMINAL_STATES",
    "TenancyManager",
    "TenantError",
    "TenantQuotas",
    "TokenBucket",
    "open_backend",
    "validate_tenant",
]
