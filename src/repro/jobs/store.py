"""Durable job records as an append-only event log with pluggable backends.

A job's lifecycle — ``queued -> running -> done | failed | cancelled`` — is
recorded as a sequence of immutable events (created, transition, plan,
progress, cancel-requested).  The :class:`JobStore` keeps the materialised
:class:`JobRecord` view in memory and appends every event to a backend:

* :class:`MemoryBackend` — events die with the process (tests, demos);
* :class:`SqliteBackend` — one WAL-mode SQLite file under the server's
  checkpoint directory; every append is a committed transaction, so a
  SIGKILLed server replays the log on restart to exactly the state its
  clients last observed.

Backends only ever *append* and *replay* — the protocol is deliberately
S3/Postgres-shaped (an ordered stream of ``(job_id, event)`` rows) so a
future shared result tier slots in without touching the store logic.

Recovery is part of construction: jobs found ``running`` after a replay are
re-queued (the process executing them is gone), and running jobs with a
pending cancellation are cancelled outright.  The
:class:`~repro.jobs.runner.JobRunner` then resumes re-queued jobs from their
per-block :class:`~repro.distributed.checkpoint.CheckpointStore` state.
"""
from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol

from .. import faults
from ..obs.metrics import note_job_transition, observe_job_seconds
from .tenancy import DEFAULT_TENANT

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobBackend",
    "JobRecord",
    "JobStore",
    "JobStoreError",
    "MemoryBackend",
    "SqliteBackend",
    "open_backend",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: legal state-machine edges; ``running -> queued`` is the restart-recovery
#: re-queue (the executing process died, the work is durable on disk)
_ALLOWED = {
    "queued": {"running", "cancelled"},
    "running": {"done", "failed", "cancelled", "queued"},
}


class JobStoreError(Exception):
    """Illegal transition or malformed event."""


@dataclass
class JobRecord:
    """The materialised view of one job's event log."""

    job_id: str
    tenant: str
    kind: str
    request: dict
    model: str
    state: str = "queued"
    created_at: float = 0.0
    updated_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: machine-readable failure class (e.g. ``crash_loop``) beside the text
    error_code: str | None = None
    #: derived once per execution: measure digest, grid/block counts, engine
    plan: dict = field(default_factory=dict)
    #: latest per-block progress snapshot for the current attempt
    progress: dict = field(default_factory=dict)
    attempts: int = 0
    cancel_requested: bool = False

    def view(self, *, include_result: bool = True) -> dict:
        """JSON-ready view served at ``GET /v1/jobs/{id}``."""
        out = {
            "job": self.job_id,
            "location": f"/v1/jobs/{self.job_id}",
            "tenant": self.tenant,
            "kind": self.kind,
            "model": self.model,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "plan": dict(self.plan),
            "progress": dict(self.progress),
            "has_result": self.result is not None,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.error_code is not None:
            out["error_code"] = self.error_code
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


class JobBackend(Protocol):
    """Append-only event sink + ordered replay source."""

    def append(self, job_id: str, event: dict) -> None:
        ...  # pragma: no cover - protocol definition

    def replay(self) -> Iterable[tuple[str, dict]]:
        ...  # pragma: no cover - protocol definition

    def close(self) -> None:
        ...  # pragma: no cover - protocol definition


class MemoryBackend:
    """Process-local event list; nothing survives a restart."""

    name = "memory"
    durable = False

    def __init__(self):
        self._events: list[tuple[str, dict]] = []
        self._lock = threading.Lock()

    def append(self, job_id: str, event: dict) -> None:
        with self._lock:
            self._events.append((job_id, dict(event)))

    def replay(self) -> Iterator[tuple[str, dict]]:
        with self._lock:
            events = list(self._events)
        yield from events

    def close(self) -> None:
        pass


class SqliteBackend:
    """One append-only ``job_events`` table in a WAL-mode SQLite file.

    Each ``append`` commits, so every event a client ever observed survives
    a SIGKILL; WAL keeps concurrent server threads (HTTP handlers, the job
    runner) from serialising on reads.
    """

    name = "sqlite"
    durable = True

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS job_events ("
                "  seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  job_id TEXT NOT NULL,"
                "  at REAL NOT NULL,"
                "  event TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS job_events_job "
                "ON job_events (job_id, seq)"
            )
            self._conn.commit()

    def append(self, job_id: str, event: dict) -> None:
        payload = json.dumps(event)
        faults.fire("jobs.commit", job=job_id, type=event.get("type"))
        with self._lock:
            self._conn.execute(
                "INSERT INTO job_events (job_id, at, event) VALUES (?, ?, ?)",
                (job_id, float(event.get("at", 0.0)), payload),
            )
            self._conn.commit()

    def replay(self) -> Iterator[tuple[str, dict]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, event FROM job_events ORDER BY seq"
            ).fetchall()
        for job_id, payload in rows:
            try:
                event = json.loads(payload)
            except json.JSONDecodeError:  # pragma: no cover - torn row guard
                continue
            yield job_id, event

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def open_backend(
    kind: str, *, checkpoint_dir: str | Path | None = None
) -> MemoryBackend | SqliteBackend:
    """Resolve a backend-selection name (``memory`` / ``sqlite`` / ``auto``).

    ``auto`` picks sqlite whenever a checkpoint directory exists to put the
    database in (the job log and the per-block result checkpoints share one
    durable root) and falls back to memory otherwise.
    """
    kind = (kind or "auto").lower()
    if kind == "auto":
        kind = "sqlite" if checkpoint_dir else "memory"
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        if not checkpoint_dir:
            raise ValueError(
                "the sqlite job store needs a checkpoint directory "
                "(start the server with --checkpoint)"
            )
        return SqliteBackend(Path(checkpoint_dir) / "jobs.sqlite")
    raise ValueError(
        f"unknown job store {kind!r}: expected 'memory', 'sqlite' or 'auto'"
    )


class JobStore:
    """Materialised job state over an append-only backend, with recovery."""

    def __init__(
        self,
        backend: JobBackend | None = None,
        *,
        clock=time.time,
        max_attempts: int = 5,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._backend = backend or MemoryBackend()
        self._clock = clock
        self._lock = threading.RLock()
        self._records: dict[str, JobRecord] = {}
        #: executions (``running`` transitions) a job may burn before restart
        #: recovery declares it a crash loop and fails it instead of
        #: re-queueing — a job that reliably kills its server must not take
        #: the service down forever.
        self.max_attempts = int(max_attempts)
        self._replay()
        #: job ids re-queued (or force-cancelled) by restart recovery
        self.recovered: list[str] = self._recover()

    # ----------------------------------------------------------- lifecycle
    @property
    def backend_name(self) -> str:
        return getattr(self._backend, "name", type(self._backend).__name__)

    @property
    def durable(self) -> bool:
        return bool(getattr(self._backend, "durable", False))

    def close(self) -> None:
        self._backend.close()

    def create(
        self,
        *,
        tenant: str = DEFAULT_TENANT,
        kind: str,
        request: dict,
        model: str,
    ) -> JobRecord:
        """Append a ``created`` event and return the new ``queued`` record."""
        job_id = uuid.uuid4().hex[:12]
        now = self._clock()
        event = {
            "type": "created",
            "at": now,
            "tenant": tenant,
            "kind": kind,
            "request": dict(request),
            "model": model,
        }
        with self._lock:
            record = self._apply(job_id, event)
            self._backend.append(job_id, event)
        note_job_transition("queued", tenant)
        return record

    def transition(
        self,
        job_id: str,
        state: str,
        *,
        result: dict | None = None,
        error: str | None = None,
        error_code: str | None = None,
        note: str | None = None,
    ) -> JobRecord:
        """Append a validated state transition (raises on illegal edges)."""
        if state not in JOB_STATES:
            raise JobStoreError(f"unknown job state {state!r}")
        event: dict = {"type": "transition", "state": state, "at": self._clock()}
        if result is not None:
            event["result"] = result
        if error is not None:
            event["error"] = str(error)
        if error_code is not None:
            event["error_code"] = str(error_code)
        if note is not None:
            event["note"] = note
        with self._lock:
            record = self._require(job_id)
            if state not in _ALLOWED.get(record.state, ()):  # terminal states allow nothing
                raise JobStoreError(
                    f"job {job_id} cannot go {record.state} -> {state}"
                )
            record = self._apply(job_id, event)
            self._backend.append(job_id, event)
        note_job_transition(state, record.tenant)
        if state in TERMINAL_STATES and record.started_at is not None:
            observe_job_seconds(
                record.kind, max(record.finished_at - record.started_at, 0.0)
            )
        return record

    def annotate_plan(self, job_id: str, plan: dict) -> None:
        """Record the derived query plan (measure digest, grid/block sizes)."""
        event = {"type": "plan", "at": self._clock(), "plan": dict(plan)}
        with self._lock:
            self._require(job_id)
            self._apply(job_id, event)
            self._backend.append(job_id, event)

    def progress(self, job_id: str, progress: dict) -> None:
        """Record one per-block progress snapshot (appended, last one wins)."""
        event = {"type": "progress", "at": self._clock(), "progress": dict(progress)}
        with self._lock:
            self._require(job_id)
            self._apply(job_id, event)
            self._backend.append(job_id, event)

    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job outright; flag a running one for the runner."""
        with self._lock:  # RLock: held across the queued -> cancelled edge
            record = self._require(job_id)
            if record.state == "queued":
                return self.transition(
                    job_id, "cancelled", note="cancelled while queued"
                )
            if record.state == "running" and not record.cancel_requested:
                event = {"type": "cancel-requested", "at": self._clock()}
                self._apply(job_id, event)
                self._backend.append(job_id, event)
            return record  # running (runner cancels between blocks) or terminal

    # -------------------------------------------------------------- queries
    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            record = self._records.get(job_id)
            return bool(record and record.cancel_requested)

    def list(self, tenant: str | None = None) -> list[JobRecord]:
        """Records (newest first), scoped to one tenant when given."""
        with self._lock:
            records = [
                r for r in self._records.values()
                if tenant is None or r.tenant == tenant
            ]
        return sorted(records, key=lambda r: r.created_at, reverse=True)

    def next_queued(self) -> JobRecord | None:
        """The oldest queued job (FIFO dispatch order)."""
        with self._lock:
            queued = [r for r in self._records.values() if r.state == "queued"]
        return min(queued, key=lambda r: r.created_at) if queued else None

    def active_count(self, tenant: str) -> int:
        """Queued + running jobs owned by ``tenant`` (the quota unit)."""
        with self._lock:
            return sum(
                1 for r in self._records.values()
                if r.tenant == tenant and r.state in ("queued", "running")
            )

    def stats(self) -> dict:
        with self._lock:
            by_state: dict[str, int] = {}
            tenants: set[str] = set()
            for record in self._records.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
                tenants.add(record.tenant)
        return {
            "backend": self.backend_name,
            "durable": self.durable,
            "jobs": sum(by_state.values()),
            "by_state": by_state,
            "tenants": len(tenants),
            "recovered": list(self.recovered),
        }

    # ------------------------------------------------------------ internals
    def _require(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise JobStoreError(f"unknown job {job_id!r}")
        return record

    def _apply(self, job_id: str, event: dict) -> JobRecord:
        """Fold one event into the materialised record (no validation)."""
        kind = event.get("type")
        at = float(event.get("at", 0.0))
        if kind == "created":
            record = JobRecord(
                job_id=job_id,
                tenant=event.get("tenant", DEFAULT_TENANT),
                kind=event.get("kind", "passage"),
                request=dict(event.get("request", {})),
                model=str(event.get("model", "")),
                state="queued",
                created_at=at,
                updated_at=at,
            )
            self._records[job_id] = record
            return record
        record = self._records.get(job_id)
        if record is None:
            raise JobStoreError(
                f"event for unknown job {job_id!r} (log corrupted?)"
            )
        record.updated_at = at
        if kind == "transition":
            state = event["state"]
            record.state = state
            if state == "running":
                record.started_at = at
                record.attempts += 1
                record.progress = {}
            elif state == "queued":
                # restart re-queue: keep attempts, clear the stale flags
                record.started_at = None
                record.progress = {}
            if state in TERMINAL_STATES:
                record.finished_at = at
                record.cancel_requested = False
            if "result" in event:
                record.result = event["result"]
            if "error" in event:
                record.error = event["error"]
            if "error_code" in event:
                record.error_code = event["error_code"]
        elif kind == "plan":
            record.plan = dict(event.get("plan", {}))
        elif kind == "progress":
            record.progress = dict(event.get("progress", {}))
        elif kind == "cancel-requested":
            record.cancel_requested = True
        else:
            raise JobStoreError(f"unknown event type {kind!r}")
        return record

    def _replay(self) -> None:
        """Rebuild records from the backend (no re-append, no metrics)."""
        for job_id, event in self._backend.replay():
            self._apply(job_id, event)

    def _recover(self) -> list[str]:
        """Re-queue jobs orphaned mid-run by a dead process."""
        with self._lock:
            running = [r for r in self._records.values() if r.state == "running"]
        recovered = []
        for record in running:
            if record.cancel_requested:
                self.transition(
                    record.job_id, "cancelled",
                    note="cancellation completed during restart recovery",
                )
            elif record.attempts >= self.max_attempts:
                # Every execution of this job has taken its process down.
                # Re-queueing it again would crash the next server too:
                # break the loop with a structured, queryable failure.
                self.transition(
                    record.job_id, "failed",
                    error=(
                        f"crash loop: {record.attempts} execution(s) died "
                        "mid-run; not re-queueing"
                    ),
                    error_code="crash_loop",
                    note="failed by restart recovery",
                )
            else:
                self.transition(
                    record.job_id, "queued",
                    note="re-queued after restart (previous run died)",
                )
            recovered.append(record.job_id)
        return recovered
