"""Background executor draining the job queue through the serving pipeline.

The :class:`JobRunner` owns one daemon thread.  Each claimed job is executed
through the *same* code path a synchronous query takes —
``AnalysisService.passage`` / ``.transient`` over the coalescing scheduler
and the block pipeline — with one difference: the evaluation step is driven
block-by-block by the runner, so that

* every completed s-block lands in the tiered result cache (and, with a
  checkpoint directory, on disk) before the next one starts,
* the job record's progress is advanced once per completed s-block
  (``GET /v1/jobs/{id}`` shows monotone progress),
* cancellation is honoured *between* blocks (``DELETE /v1/jobs/{id}``),
* a job re-queued after a crash resumes from its checkpointed blocks: the
  scheduler's disk tier answers the already-solved points, so only the
  genuinely unfinished blocks are computed (no loss, no double-count).

Because the final response is assembled by the synchronous query method
from the very values the blocks produced, an async job's result is
bit-identical to the synchronous path's.
"""
from __future__ import annotations

import logging
import os
import threading
import time

from .. import faults
from ..smp.passage import SPointPolicy
from .store import JobRecord, JobStore, JobStoreError

__all__ = ["JobCancelled", "JobDrained", "JobRunner"]

logger = logging.getLogger("repro.jobs")

#: test/ops hook: force the runner's per-dispatch block size
_BLOCK_POINTS_ENV = "REPRO_JOBS_BLOCK_POINTS"


class JobCancelled(Exception):
    """Raised between blocks when the job's cancel flag is set."""


class JobDrained(Exception):
    """Raised between blocks when the runner is draining for shutdown.

    The in-flight job goes back to ``queued`` with its checkpointed blocks
    intact, so the next server to open the store resumes it from where the
    drain cut it off.
    """


class JobRunner:
    """Drains ``queued`` jobs from a :class:`JobStore`, one at a time.

    A single executor thread is deliberate: transform evaluation already
    parallelises *inside* a job (the worker pool shares the kernel plane),
    and concurrent sync queries still coalesce with a running job through
    the scheduler, so a second executor would only fight the first for the
    same evaluator lock.
    """

    def __init__(
        self,
        service,
        store: JobStore,
        *,
        block_points: int | None = None,
        poll_interval: float = 0.5,
    ):
        self.service = service
        self.store = store
        env_block = os.environ.get(_BLOCK_POINTS_ENV)
        self.block_points = int(env_block) if env_block else block_points
        self.poll_interval = float(poll_interval)
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._stop = False
        self._draining = False
        self._active: str | None = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-job-runner", daemon=True
        )
        self._thread.start()

    def wake(self) -> None:
        """Nudge the loop (called after every submit and cancel)."""
        with self._cond:
            self._cond.notify_all()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop = True
        self.wake()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop claiming jobs; re-queue the in-flight one at a block boundary.

        Returns True once the executor is idle (the in-flight job, if any,
        has been pushed back to ``queued`` with its completed blocks already
        checkpointed), False if it was still busy when ``timeout`` expired.
        """
        self._draining = True
        self.wake()
        deadline = time.monotonic() + float(timeout)
        with self._cond:
            while self._active is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=min(remaining, 0.25))
        return True

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def draining(self) -> bool:
        return self._draining

    # ----------------------------------------------------------------- loop
    def _loop(self) -> None:
        while not self._stop:
            if self._draining:
                with self._cond:
                    self._cond.wait(timeout=self.poll_interval)
                continue
            record = self.store.next_queued()
            if record is None:
                with self._cond:
                    self._cond.wait(timeout=self.poll_interval)
                continue
            try:
                record = self.store.transition(record.job_id, "running")
            except JobStoreError:
                continue  # cancelled (or otherwise claimed) since we looked
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        from ..service.service import ServiceError, measure_kwargs

        evaluator = self._block_evaluator(record)
        self._active = record.job_id
        try:
            kwargs = measure_kwargs(record.request, record.kind)
            run = getattr(self.service, record.kind)
            response = run(
                tenant=record.tenant,
                _evaluate=evaluator,
                **kwargs,
            )
            self.store.transition(record.job_id, "done", result=response)
            logger.info("job=%s tenant=%s kind=%s state=done",
                        record.job_id, record.tenant, record.kind)
        except JobCancelled:
            self.store.transition(record.job_id, "cancelled",
                                  note="cancelled between blocks")
            logger.info("job=%s tenant=%s state=cancelled", record.job_id,
                        record.tenant)
        except JobDrained:
            self.store.transition(record.job_id, "queued",
                                  note="re-queued by graceful drain")
            logger.info("job=%s tenant=%s state=queued (drained)",
                        record.job_id, record.tenant)
        except ServiceError as exc:
            self.store.transition(record.job_id, "failed",
                                  error=f"{type(exc).__name__}: {exc}")
            logger.warning("job=%s tenant=%s state=failed error=%s",
                           record.job_id, record.tenant, exc)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self.store.transition(record.job_id, "failed",
                                  error=f"{type(exc).__name__}: {exc}")
            logger.exception("job=%s tenant=%s state=failed", record.job_id,
                             record.tenant)
        finally:
            evaluator.finish()
            with self._cond:
                self._active = None
                self._cond.notify_all()

    # ------------------------------------------------------------ execution
    def _block_evaluator(self, record: JobRecord):
        """The per-job evaluation hook handed to the sync query path.

        Matches the ``_evaluate(job, s_points, entry, stats)`` contract of
        ``AnalysisService._gather``: resolve the grid through the coalescing
        scheduler exactly like a synchronous query would, but in runner-sized
        blocks with a cancellation check and a progress event between them.
        The first call sees the full plan grid; later calls (quantile
        root-finding) reuse the same accounting.
        """
        state = {"planned": False, "points_done": 0, "blocks_done": 0,
                 "reporter": None, "board_key": None}
        board = getattr(self.service.scheduler, "progress_board", None)

        def evaluate(job, s_points, entry, stats):
            s_list = [complex(s) for s in s_points]
            policy = job.policy or SPointPolicy()
            engine = policy.resolve_engine(entry.evaluator)
            size = self.block_points or policy.dispatch_block_points(
                entry.evaluator, engine, len(s_list),
                max(int(getattr(self.service, "workers", 1)), 1),
                vector=job.kind() == "transient",
            )
            blocks = [s_list[i:i + size] for i in range(0, len(s_list), size)]
            if not state["planned"]:
                state["planned"] = True
                if board is not None:
                    # One board run spans the whole job — each block's
                    # evaluation advances it, so /v1/progress/{digest} shows
                    # a single monotone run instead of a micro-run per block.
                    state["board_key"] = entry.digest
                    state["reporter"] = board.start(
                        entry.digest, label=f"job:{record.job_id}"
                    )
                self.store.annotate_plan(record.job_id, {
                    "measure": job.digest(),
                    "engine": engine,
                    "n_s_points": len(s_list),
                    "n_blocks": len(blocks),
                    "block_points": size,
                    "solver": job.solver,
                    "points_checkpointed": self.service.cache.checkpointed_points(
                        job.digest()
                    ),
                })
                self.store.progress(record.job_id, {
                    "points_total": len(s_list),
                    "blocks_total": len(blocks),
                    "points_done": 0,
                    "blocks_done": 0,
                    "points_computed": 0,
                })
                state["points_total"] = len(s_list)
                state["blocks_total"] = len(blocks)
            else:
                # quantile refinement adds points beyond the plan grid
                state["points_total"] = state.get("points_total", 0) + len(s_list)
                state["blocks_total"] = state.get("blocks_total", 0) + len(blocks)

            resolved: dict[complex, complex] = {}
            for block in blocks:
                if self.store.cancel_requested(record.job_id):
                    raise JobCancelled(record.job_id)
                resolved.update(self.service.scheduler.evaluate(
                    job, block, eval_lock=entry.eval_lock, stats=stats,
                    progress_key=entry.digest, reporter=state["reporter"],
                ))
                state["points_done"] += len(block)
                state["blocks_done"] += 1
                self.store.progress(record.job_id, {
                    "points_total": state["points_total"],
                    "blocks_total": state["blocks_total"],
                    "points_done": state["points_done"],
                    "blocks_done": state["blocks_done"],
                    "points_computed": stats.s_points_computed,
                })
                # e.g. jobs.block=crash:done=1 hard-kills the process after
                # the first completed block: blocks are checkpointed, the job
                # is still `running` in the store — the durability scenario.
                faults.fire(
                    "jobs.block",
                    done=state["blocks_done"], job=record.job_id,
                )
                if self._draining:
                    raise JobDrained(record.job_id)
            if self.store.cancel_requested(record.job_id):
                raise JobCancelled(record.job_id)
            return resolved

        def finish():
            if state["reporter"] is not None:
                board.done(state["board_key"], state["reporter"])
                state["reporter"] = None

        evaluate.finish = finish
        return evaluate
