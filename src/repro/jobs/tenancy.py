"""Multi-tenant namespaces, quotas and rate limits for the serving layer.

Every HTTP request carries a tenant name (the ``X-Repro-Tenant`` header;
:data:`DEFAULT_TENANT` when absent).  The tenant threads through model
registration (per-tenant namespaces over the content-addressed registry),
job ownership (``/v1/jobs`` listings are disjoint across tenants) and the
per-tenant metric labels, and is the unit of admission control:

* a **token-bucket rate limit** smooths request bursts per tenant,
* a **max active jobs** quota bounds how many async jobs one tenant may
  have queued or running at once,
* a **max models** quota bounds how many distinct model digests one tenant
  may register.

All enforcement raises :class:`QuotaError`, which the service layer maps to
a structured HTTP ``429`` — one tenant exhausting its budget never degrades
another tenant's service.  Everything here is stdlib-only and thread-safe.
"""
from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_TENANT",
    "QuotaError",
    "TenantError",
    "TenantQuotas",
    "TenancyManager",
    "TokenBucket",
    "validate_tenant",
]

#: tenant used when a request carries no ``X-Repro-Tenant`` header
DEFAULT_TENANT = "default"

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class TenantError(ValueError):
    """Malformed tenant name (maps to HTTP 400)."""


class QuotaError(Exception):
    """A tenant exceeded one of its budgets (maps to HTTP 429).

    Attributes name the tenant, which quota tripped (``"rate"``,
    ``"active_jobs"`` or ``"models"``), the configured limit, and — for the
    rate limiter — how long until a token is available again.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str,
        quota: str,
        limit: float | int | None = None,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.retry_after = retry_after


def validate_tenant(name: str | None) -> str:
    """Normalise and validate a tenant name; ``None``/empty means default.

    Names are restricted to a filename/label-safe alphabet because they key
    metric labels, job ownership and registry namespaces.
    """
    if name is None:
        return DEFAULT_TENANT
    name = str(name).strip()
    if not name:
        return DEFAULT_TENANT
    if not _TENANT_RE.match(name):
        raise TenantError(
            f"invalid tenant name {name!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], starting with a letter or digit"
        )
    return name


@dataclass(frozen=True)
class TenantQuotas:
    """Per-tenant budgets; ``None`` disables the corresponding check.

    The defaults are deliberately generous — single-user deployments and the
    test suite never notice them — and a real multi-tenant deployment dials
    them down via ``semimarkov serve --max-active-jobs/--max-models/--rate``.
    """

    #: jobs one tenant may have queued or running at once
    max_active_jobs: int | None = 64
    #: distinct model digests one tenant may register
    max_models: int | None = None
    #: sustained requests/second through the HTTP admission hook
    rate_per_second: float | None = None
    #: bucket capacity (burst size); defaults to ``max(2 * rate, 8)``
    burst: float | None = None


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill up to ``burst``."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, cost: float = 1.0) -> float | None:
        """Take ``cost`` tokens; ``None`` on success, else seconds-to-retry."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= cost:
                self._tokens -= cost
                return None
            return (cost - self._tokens) / self.rate


class TenancyManager:
    """The one admission-control hook the HTTP layer calls per request.

    Owns a token bucket per tenant and answers the generic "is this tenant
    within quota X?" question for the job and model budgets (the counts
    themselves live with the job store and the registry — this class only
    compares them against the configured limits so every limit is enforced
    through a single code path).
    """

    def __init__(self, quotas: TenantQuotas | None = None, clock=time.monotonic):
        self.quotas = quotas or TenantQuotas()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ API
    def admit(self, tenant: str, cost: float = 1.0) -> None:
        """Charge one request against the tenant's rate limit (or raise)."""
        rate = self.quotas.rate_per_second
        if rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                burst = self.quotas.burst or max(2.0 * rate, 8.0)
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[tenant] = bucket
        retry_after = bucket.try_acquire(cost)
        if retry_after is not None:
            raise QuotaError(
                f"tenant {tenant!r} exceeded its rate limit of "
                f"{rate:g} requests/s",
                tenant=tenant, quota="rate", limit=rate,
                retry_after=round(retry_after, 3),
            )

    def check_active_jobs(self, tenant: str, active: int) -> None:
        """Raise iff admitting one more active job would exceed the quota."""
        limit = self.quotas.max_active_jobs
        if limit is not None and active >= limit:
            raise QuotaError(
                f"tenant {tenant!r} already has {active} queued/running "
                f"job(s); the limit is {limit}",
                tenant=tenant, quota="active_jobs", limit=limit,
            )

    def check_models(self, tenant: str, registered: int) -> None:
        """Raise iff registering one more model would exceed the quota."""
        limit = self.quotas.max_models
        if limit is not None and registered >= limit:
            raise QuotaError(
                f"tenant {tenant!r} already registered {registered} "
                f"model(s); the limit is {limit}",
                tenant=tenant, quota="models", limit=limit,
            )

    def stats(self) -> dict:
        with self._lock:
            tenants = sorted(self._buckets)
        return {
            "max_active_jobs": self.quotas.max_active_jobs,
            "max_models": self.quotas.max_models,
            "rate_per_second": self.quotas.rate_per_second,
            "rate_limited_tenants": tenants,
        }
