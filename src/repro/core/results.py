"""Result containers for passage-time and transient analyses."""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PassageTimeResult", "TransientResult"]


@dataclass
class PassageTimeResult:
    """Passage-time density / CDF evaluated on a grid of t-points.

    Attributes
    ----------
    t_points:
        The time points requested.
    density:
        ``f(t)`` at each t-point (``None`` when only the CDF was requested).
    cdf:
        ``F(t) = P(passage <= t)`` at each t-point (``None`` when only the
        density was requested).
    transform_values:
        The raw transform evaluations ``{s: L(s)}`` gathered for the
        inversion — kept so quantiles and extra t-points can reuse them.
    method:
        Inversion algorithm used ("euler" / "laguerre").
    quantiles:
        Refined quantiles ``{q: t}`` requested with the query (root-found
        with extra inversions, not interpolated from the CDF samples).
    statistics:
        Free-form diagnostics (iteration counts, wall-clock, worker counts).
    """

    t_points: np.ndarray
    density: np.ndarray | None = None
    cdf: np.ndarray | None = None
    transform_values: dict = field(default_factory=dict)
    method: str = "euler"
    quantiles: dict = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)

    def __post_init__(self):
        self.t_points = np.asarray(self.t_points, dtype=float)
        if self.density is not None:
            self.density = np.asarray(self.density, dtype=float)
        if self.cdf is not None:
            self.cdf = np.asarray(self.cdf, dtype=float)

    # ------------------------------------------------------------- queries
    def probability_between(self, t1: float, t2: float) -> float:
        """``P(t1 < T < t2)`` estimated from the CDF samples by interpolation."""
        if self.cdf is None:
            raise ValueError("this result holds no CDF values")
        if t2 < t1:
            raise ValueError("t2 must be >= t1")
        lo, hi = np.interp([t1, t2], self.t_points, self.cdf)
        return float(np.clip(hi - lo, 0.0, 1.0))

    def quantile(self, q: float) -> float:
        """The time ``t`` with ``F(t) = q``, interpolated from the CDF samples.

        The answer is only as precise as the t-grid is fine around the
        quantile; use :meth:`PassageTimeSolver.quantile` for a refined root
        find that evaluates extra points.
        """
        if self.cdf is None:
            raise ValueError("this result holds no CDF values")
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie strictly between 0 and 1")
        cdf = np.clip(self.cdf, 0.0, 1.0)
        # Euler-inversion oscillation can leave the sampled CDF locally
        # non-monotone, and ``np.interp`` on a non-increasing abscissa
        # silently returns a wrong t.  Interpolating on the running-max
        # envelope yields a genuine generalised inverse of the samples.
        envelope = np.maximum.accumulate(cdf)
        if q < envelope[0] or q > envelope[-1]:
            raise ValueError(
                f"quantile {q} lies outside the covered CDF range "
                f"[{envelope[0]:.4g}, {envelope[-1]:.4g}]"
            )
        return float(np.interp(q, envelope, self.t_points))

    def mean_estimate(self) -> float:
        """Mean passage time estimated from the density samples (trapezoid rule)."""
        if self.density is None:
            raise ValueError("this result holds no density values")
        return float(np.trapezoid(self.t_points * self.density, self.t_points))

    def normalisation_defect(self) -> float:
        """|1 - integral of the density over the covered grid| — a sanity measure."""
        if self.density is None:
            raise ValueError("this result holds no density values")
        return float(abs(1.0 - np.trapezoid(self.density, self.t_points)))

    def as_table(self) -> list[tuple[float, float | None, float | None]]:
        """Rows ``(t, f(t), F(t))`` — convenient for printing benchmark output."""
        density = self.density if self.density is not None else [None] * len(self.t_points)
        cdf = self.cdf if self.cdf is not None else [None] * len(self.t_points)
        return [
            (float(t), None if f is None else float(f), None if F is None else float(F))
            for t, f, F in zip(self.t_points, density, cdf)
        ]


@dataclass
class TransientResult:
    """Transient probability ``P(Z(t) in targets)`` on a grid of t-points."""

    t_points: np.ndarray
    probability: np.ndarray
    steady_state: float | None = None
    transform_values: dict = field(default_factory=dict)
    method: str = "euler"
    statistics: dict = field(default_factory=dict)

    def __post_init__(self):
        self.t_points = np.asarray(self.t_points, dtype=float)
        self.probability = np.asarray(self.probability, dtype=float)

    def convergence_gap(self) -> float | None:
        """|P(Z(t_max) in targets) - steady state| — how settled the tail is."""
        if self.steady_state is None:
            return None
        return float(abs(self.probability[-1] - self.steady_state))

    def as_table(self) -> list[tuple[float, float]]:
        return [(float(t), float(p)) for t, p in zip(self.t_points, self.probability)]
