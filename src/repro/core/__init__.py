"""High-level passage-time and transient analysis API (the paper's pipeline).

Typical use::

    from repro.core import PassageTimeSolver

    solver = PassageTimeSolver(kernel, sources=[0], targets=[5, 6])
    result = solver.solve(t_points=np.linspace(1, 50, 50))
    result.density, result.cdf, result.quantile(0.99)

The solvers hide the three-stage structure of the computation (decide which
s-points the Laplace inversion needs, evaluate the passage-time / transient
transform at each of them, invert), which is exactly the split the
distributed pipeline in :mod:`repro.distributed` parallelises.
"""
from .jobs import PassageTimeJob, TransientJob, TransformJob
from .results import PassageTimeResult, TransientResult
from .solvers import PassageTimeSolver, TransientSolver

__all__ = [
    "TransformJob",
    "PassageTimeJob",
    "TransientJob",
    "PassageTimeResult",
    "TransientResult",
    "PassageTimeSolver",
    "TransientSolver",
]
