"""User-facing solvers for passage-time and transient measures."""
from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np
from scipy import optimize

from ..distributions.moments import lst_moments
from ..laplace import get_inverter
from ..laplace.inverter import canonical_s
from ..smp.embedded import source_weights
from ..smp.kernel import SMPKernel
from ..smp.passage import PassageTimeOptions
from ..smp.steady import steady_state_probability
from ..utils.timing import Stopwatch
from .jobs import PassageTimeJob, TransientJob, TransformJob
from .results import PassageTimeResult, TransientResult

__all__ = ["PassageTimeSolver", "TransientSolver"]


class _BaseSolver:
    """Shared plumbing: source weighting, s-point evaluation, caching, backends."""

    def __init__(
        self,
        kernel: SMPKernel,
        sources,
        targets,
        *,
        alpha: np.ndarray | None = None,
        method: str = "iterative",
        inversion: str = "euler",
        options: PassageTimeOptions | None = None,
        inverter_options: Mapping | None = None,
        backend=None,
    ):
        if not isinstance(kernel, SMPKernel):
            raise TypeError("kernel must be an SMPKernel")
        self.kernel = kernel
        self.sources = np.unique(np.atleast_1d(np.asarray(sources, dtype=np.int64)))
        self.targets = np.unique(np.atleast_1d(np.asarray(targets, dtype=np.int64)))
        if alpha is None:
            alpha = source_weights(kernel, self.sources)
        else:
            alpha = np.asarray(alpha, dtype=float)
            if alpha.shape != (kernel.n_states,):
                raise ValueError("alpha must have one weight per state")
        self.alpha = alpha
        self.options = options or PassageTimeOptions()
        self.method = method
        self.inverter = get_inverter(inversion, **(dict(inverter_options or {})))
        self.backend = backend
        self._job = self._build_job()
        self._cache: dict[complex, complex] = {}

    # ------------------------------------------------------------ subclass
    def _build_job(self) -> TransformJob:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------ plumbing
    @property
    def job(self) -> TransformJob:
        return self._job

    def transform(self, s: complex) -> complex:
        """The measure's Laplace transform at a single s-point."""
        key = canonical_s(s)
        if key not in self._cache:
            self._cache[key] = self._job.evaluate(complex(s))
        return self._cache[key]

    def transform_values(self, s_points: Iterable[complex]) -> dict[complex, complex]:
        """Evaluate the transform at many s-points (optionally via a backend).

        Values already present in the solver's cache are not recomputed; the
        remainder is deduplicated on canonical s before being dispatched, so
        repeated t-grids and overlapping Euler grids cost nothing extra.
        """
        s_points = [complex(s) for s in np.asarray(list(s_points), dtype=complex)]
        missing: dict[complex, complex] = {}
        for s in s_points:
            key = canonical_s(s)
            if key not in self._cache and key not in missing:
                missing[key] = s
        if missing:
            todo = list(missing.values())
            if self.backend is not None:
                computed = self.backend.evaluate(self._job, todo)
            else:
                computed = self._job.evaluate_many(todo)
            for s, value in computed.items():
                self._cache[canonical_s(s)] = complex(value)
        return {s: self._cache[canonical_s(s)] for s in s_points}


class PassageTimeSolver(_BaseSolver):
    """First-passage-time analysis from a set of sources to a set of targets.

    Parameters
    ----------
    kernel:
        The semi-Markov kernel.
    sources, targets:
        State index sets.  Multiple sources are weighted by the embedded
        DTMC's steady-state probabilities (Eq. 5) unless ``alpha`` is given.
    method:
        ``"iterative"`` (the paper's algorithm) or ``"direct"`` (sparse solve).
    inversion:
        ``"euler"`` (default, robust to discontinuities) or ``"laguerre"``.
    backend:
        Optional distributed backend from :mod:`repro.distributed`.
    """

    def _build_job(self) -> TransformJob:
        return PassageTimeJob(
            kernel=self.kernel,
            alpha=self.alpha,
            targets=self.targets,
            options=self.options,
            solver=self.method,
        )

    # ------------------------------------------------------------- measures
    def density(self, t_points) -> np.ndarray:
        """Passage-time density ``f(t)`` at each t-point."""
        t_points = np.asarray(list(t_points), dtype=float)
        values = self.transform_values(self.inverter.required_s_points(t_points))
        return self.inverter.invert_values(t_points, values)

    def cdf(self, t_points) -> np.ndarray:
        """Passage-time distribution function ``F(t)`` at each t-point."""
        t_points = np.asarray(list(t_points), dtype=float)
        values = self.transform_values(self.inverter.required_s_points(t_points))
        cdf_values = {s: v / s for s, v in values.items() if s != 0}
        return self.inverter.invert_values(t_points, cdf_values)

    def solve(self, t_points, *, include_density: bool = True, include_cdf: bool = True) -> PassageTimeResult:
        """Compute density and/or CDF over ``t_points`` and package the result."""
        t_points = np.asarray(list(t_points), dtype=float)
        stopwatch = Stopwatch()
        with stopwatch:
            values = self.transform_values(self.inverter.required_s_points(t_points))
            density = self.inverter.invert_values(t_points, values) if include_density else None
            cdf = None
            if include_cdf:
                cdf_values = {s: v / s for s, v in values.items() if s != 0}
                cdf = self.inverter.invert_values(t_points, cdf_values)
        return PassageTimeResult(
            t_points=t_points,
            density=density,
            cdf=cdf,
            transform_values=values,
            method=self.inverter.name,
            statistics={
                "wall_clock_seconds": stopwatch.elapsed,
                "s_point_evaluations": len(values),
                "solver": self.method,
            },
        )

    def quantile(self, q: float, t_lower: float, t_upper: float, *, xtol: float = 1e-6) -> float:
        """The passage-time quantile ``t`` with ``P(T <= t) = q``.

        A bracketing root find on the inverted CDF; each function evaluation
        costs one inversion (33 transform evaluations with the default Euler
        parameters), all served from the solver's s-point cache when possible.
        """
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie strictly between 0 and 1")
        if t_upper <= t_lower:
            raise ValueError("t_upper must exceed t_lower")

        def objective(t: float) -> float:
            return float(self.cdf([t])[0]) - q

        lo, hi = objective(t_lower), objective(t_upper)
        if lo > 0 or hi < 0:
            raise ValueError(
                f"quantile {q} is not bracketed by [{t_lower}, {t_upper}] "
                f"(F(t_lower)-q={lo:.4g}, F(t_upper)-q={hi:.4g})"
            )
        return float(optimize.brentq(objective, t_lower, t_upper, xtol=xtol))

    def moments(self, order: int = 2, *, scale: float | None = None) -> np.ndarray:
        """Moments ``E[T^k]`` of the passage time from the transform near s=0.

        The finite-difference step used to differentiate the transform must be
        small relative to the *passage-time* scale, which for long rare-event
        passages can be orders of magnitude larger than any single sojourn.
        Starting from the sojourn-based guess (or an explicit ``scale``), the
        estimate is therefore refined self-consistently: the step is re-derived
        from the estimated mean until the two agree to within a factor of two.
        """
        if scale is None:
            scale = float(np.dot(self.kernel.mean_sojourn_times(), np.abs(self.alpha))) or 1.0
        scale = max(float(scale), 1e-12)

        # Moment estimation samples the transform at s-points very close to
        # zero, which is exactly where the iterative sum needs the most
        # transitions to converge.  For kernels of the size this library
        # handles in-process, the direct sparse solve is both exact and much
        # faster there, so it is used for these few evaluations regardless of
        # the solver selected for the inversion s-points.
        if self.method == "direct" or self.kernel.n_states > 50_000:
            moment_job = self._job
        else:
            moment_job = PassageTimeJob(
                kernel=self.kernel,
                alpha=self.alpha,
                targets=self.targets,
                options=self.options,
                solver="direct",
            )

        def transform_vec(s):
            return np.asarray(
                [moment_job.evaluate(complex(x)) for x in np.atleast_1d(s)]
            )

        moments = lst_moments(transform_vec, max(order, 1), scale=scale)
        for _ in range(8):
            mean_estimate = float(moments[1])
            if not np.isfinite(mean_estimate) or mean_estimate <= 0:
                break
            if 0.5 <= mean_estimate / scale <= 2.0:
                break
            scale = mean_estimate
            moments = lst_moments(transform_vec, max(order, 1), scale=scale)
        if order < 1:
            return moments[: order + 1]
        if order > 1:
            moments = lst_moments(transform_vec, order, scale=scale)
        return moments

    def mean(self) -> float:
        """Mean passage time (first moment of the transform)."""
        return float(self.moments(1)[1])


class TransientSolver(_BaseSolver):
    """Transient state distribution ``P(Z(t) in targets)`` analysis."""

    def _build_job(self) -> TransformJob:
        return TransientJob(
            kernel=self.kernel,
            alpha=self.alpha,
            targets=self.targets,
            options=self.options,
            solver=self.method,
        )

    def probability(self, t_points) -> np.ndarray:
        """``P(Z(t) in targets)`` at each t-point."""
        t_points = np.asarray(list(t_points), dtype=float)
        values = self.transform_values(self.inverter.required_s_points(t_points))
        return self.inverter.invert_values(t_points, values)

    def steady_state(self) -> float:
        """The t -> infinity limit of the transient probability."""
        return steady_state_probability(self.kernel, self.targets)

    def solve(self, t_points, *, include_steady_state: bool = True) -> TransientResult:
        t_points = np.asarray(list(t_points), dtype=float)
        stopwatch = Stopwatch()
        with stopwatch:
            values = self.transform_values(self.inverter.required_s_points(t_points))
            probability = self.inverter.invert_values(t_points, values)
        return TransientResult(
            t_points=t_points,
            probability=probability,
            steady_state=self.steady_state() if include_steady_state else None,
            transform_values=values,
            method=self.inverter.name,
            statistics={
                "wall_clock_seconds": stopwatch.elapsed,
                "s_point_evaluations": len(values),
                "solver": self.method,
            },
        )
