"""Transform-evaluation jobs: the unit of work of the distributed pipeline.

A *job* bundles everything a worker needs to evaluate the Laplace transform
of one measure (a passage time or a transient probability) at an arbitrary
s-point: the kernel, the source weighting, the target set and the truncation
options.  Jobs are picklable, so the multiprocessing backend can ship them to
worker processes once and then stream bare s-values, and they expose a stable
digest used to key the on-disk checkpoint cache.
"""
from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import note_solve_block
from ..smp.kernel import SMPKernel, UEvaluator, kernel_content_digest
from ..smp.linear import passage_transform_direct, passage_transform_direct_batch
from ..smp.passage import (
    PassageTimeOptions,
    SPointPolicy,
    passage_transform,
    passage_transform_batch,
)
from ..smp.transient import transient_transform, transient_transform_batch

__all__ = ["TransformJob", "PassageTimeJob", "TransientJob", "JobSpec"]

#: Relative cost, in matvec-equivalents, attributed to one sparse-LU solve
#: when apportioning a batch's wall-clock time over its s-points.  Only the
#: *shape* matters (the simulated cluster replays relative durations); a
#: factorisation is far more expensive than a single sparse matvec but
#: independent of ``|s|``.
_DIRECT_SOLVE_COST = 100.0


# The kernel content hash lives with the kernel (repro.smp.kernel); keep the
# historical alias for callers that imported it from here.
_kernel_digest = kernel_content_digest


@dataclass
class TransformJob(abc.ABC):
    """A transform-evaluation task: ``evaluate(s)`` for arbitrary complex ``s``."""

    kernel: SMPKernel
    alpha: np.ndarray
    targets: np.ndarray
    options: PassageTimeOptions = field(default_factory=PassageTimeOptions)
    solver: str = "iterative"
    #: iterative/direct routing used by the batched path; ``None`` means the
    #: engine default (small-|s| points go to the sparse-LU solve)
    policy: SPointPolicy | None = None

    def __post_init__(self):
        self.alpha = np.asarray(self.alpha, dtype=float)
        self.targets = np.unique(np.atleast_1d(np.asarray(self.targets, dtype=np.int64)))
        if self.solver not in ("iterative", "direct"):
            raise ValueError("solver must be 'iterative' or 'direct'")
        if self.alpha.shape != (self.kernel.n_states,):
            raise ValueError("alpha must have one weight per state")
        if self.targets.size == 0:
            raise ValueError("at least one target state is required")
        self._evaluator: UEvaluator | None = None
        #: filled by every evaluate_batch call: which evaluation engine served
        #: it plus per-block solve timings ({"engine": ..., "blocks": [...]});
        #: surfaced through service/query statistics
        self.last_report: dict | None = None

    # ------------------------------------------------------------ plumbing
    @property
    def evaluator(self) -> UEvaluator:
        """Lazily constructed (and per-process) U/U' evaluator."""
        if getattr(self, "_evaluator", None) is None:
            self._evaluator = self.kernel.evaluator()
        return self._evaluator

    def attach_evaluator(self, evaluator: UEvaluator) -> None:
        """Install a shared (per-kernel) evaluator instead of building one.

        The analysis service keeps one :class:`UEvaluator` per registered
        model so every measure on that kernel reuses the CSR structure, the
        cached ``U(s)`` grid data and the symbolic direct-solve structure.
        Callers sharing an evaluator across threads must serialise their
        evaluations (its grid caches are not thread-safe).  Like the lazily
        built evaluator, an attached one is dropped on pickling.
        """
        if evaluator.kernel is not self.kernel:
            raise ValueError("evaluator was built for a different kernel")
        self._evaluator = evaluator

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_evaluator"] = None  # rebuild lazily in the worker process
        return state

    def digest(self) -> str:
        """Content hash identifying this measure (kernel + sources + targets)."""
        h = hashlib.sha256()
        h.update(self.kind().encode())
        h.update(_kernel_digest(self.kernel).encode())
        h.update(self.alpha.tobytes())
        h.update(self.targets.tobytes())
        # The routing policy changes which points come back exact vs
        # truncated, so checkpoints must not be shared across policies.
        h.update(f"{self.options.epsilon}:{self.solver}:{self.policy!r}".encode())
        return h.hexdigest()[:32]

    # ----------------------------------------------------------------- API
    @abc.abstractmethod
    def kind(self) -> str:
        """Short label ("passage" / "transient") used in digests and logs."""

    @abc.abstractmethod
    def evaluate(self, s: complex) -> complex:
        """The transform value at ``s``."""

    @abc.abstractmethod
    def evaluate_batch(self, s_values) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate a whole s-grid in one sweep via the batched engine.

        Returns ``(values, costs)``: the transform values (in input order)
        and non-negative relative per-point costs (matvec-equivalents) that
        backends use to apportion the batch's wall-clock time.
        """

    def evaluate_many(self, s_values) -> dict[complex, complex]:
        """Evaluate a batch of s-points, returned as an ``{s: L(s)}`` mapping."""
        s_list = [complex(s) for s in s_values]
        values, _ = self.evaluate_batch(np.asarray(s_list, dtype=complex))
        return {s: complex(v) for s, v in zip(s_list, values)}


class PassageTimeJob(TransformJob):
    """Evaluates the first-passage-time transform ``L_{i->j}(s)``."""

    def kind(self) -> str:
        return "passage"

    def evaluate(self, s: complex) -> complex:
        s = complex(s)
        if s == 0:
            # L(0) is the probability of ever reaching the target set, which
            # is one in the irreducible chains this library targets.
            return 1.0 + 0.0j
        if self.solver == "direct":
            vec = passage_transform_direct(self.evaluator, self.targets, s)
            return complex(np.dot(self.alpha, vec))
        value, _ = passage_transform(
            self.evaluator, self.alpha, self.targets, s, self.options
        )
        return value

    def evaluate_batch(self, s_values) -> tuple[np.ndarray, np.ndarray]:
        s_values = np.asarray(s_values, dtype=complex).ravel()
        values = np.empty(s_values.shape, dtype=complex)
        costs = np.zeros(s_values.shape, dtype=float)
        nonzero = np.flatnonzero(s_values != 0)
        values[s_values == 0] = 1.0 + 0.0j  # reached almost surely, as in evaluate()
        if nonzero.size == 0:
            return values, costs
        s_work = s_values[nonzero]
        alpha = np.asarray(self.alpha, dtype=complex)
        if self.solver == "direct":
            import time as _time

            started = _time.perf_counter()
            vecs = passage_transform_direct_batch(self.evaluator, self.targets, s_work)
            values[nonzero] = vecs @ alpha
            costs[nonzero] = _DIRECT_SOLVE_COST
            elapsed = _time.perf_counter() - started
            note_solve_block(
                points=int(s_work.size), seconds=elapsed,
                direct_solves=int(s_work.size), engine="direct-lu",
            )
            self.last_report = {
                "engine": "direct-lu",
                "blocks": [{
                    "points": int(s_work.size),
                    "seconds": round(elapsed, 6),
                    "iterations": 0,
                    "direct_solves": int(s_work.size),
                }],
            }
            return values, costs
        report: dict = {}
        vals, diags = passage_transform_batch(
            self.evaluator, alpha, self.targets, s_work, self.options,
            policy=self.policy, report=report,
        )
        self.last_report = report
        values[nonzero] = vals
        costs[nonzero] = [
            d.matvec_count + d.direct_solves * _DIRECT_SOLVE_COST for d in diags
        ]
        return values, costs


class TransientJob(TransformJob):
    """Evaluates the transient-probability transform ``T*_{i->j}(s)``."""

    def kind(self) -> str:
        return "transient"

    def evaluate(self, s: complex) -> complex:
        return transient_transform(
            self.evaluator,
            self.alpha,
            self.targets,
            complex(s),
            self.options,
            solver=self.solver,
        )

    def evaluate_batch(self, s_values) -> tuple[np.ndarray, np.ndarray]:
        s_values = np.asarray(s_values, dtype=complex).ravel()
        report: dict = {}
        values, diags = transient_transform_batch(
            self.evaluator,
            self.alpha,
            self.targets,
            s_values,
            self.options,
            solver=self.solver,
            policy=self.policy,
            report=report,
        )
        self.last_report = report
        costs = np.asarray(
            [d.matvec_count + d.direct_solves * _DIRECT_SOLVE_COST for d in diags],
            dtype=float,
        )
        return values, costs


_JOB_KINDS = {"passage": PassageTimeJob, "transient": TransientJob}


@dataclass
class JobSpec:
    """The picklable skeleton of a :class:`TransformJob` — no kernel arrays.

    A worker that has attached the kernel plane (see
    :mod:`repro.smp.plane`) only needs to know *which measure* to evaluate:
    the kernel digest (for sanity/checkpoint keying), the non-zero source
    weights, the target indices and the truncation/routing options.  Pickling
    a spec costs a few hundred bytes regardless of kernel size; ``build``
    reconstitutes a full job against the process-local evaluator with a
    digest identical to the original job's.
    """

    kind: str
    kernel_digest: str
    n_states: int
    alpha_indices: np.ndarray
    alpha_weights: np.ndarray
    targets: np.ndarray
    options: PassageTimeOptions = field(default_factory=PassageTimeOptions)
    solver: str = "iterative"
    policy: SPointPolicy | None = None

    @classmethod
    def from_job(cls, job: TransformJob) -> "JobSpec":
        indices = np.flatnonzero(job.alpha)
        return cls(
            kind=job.kind(),
            kernel_digest=_kernel_digest(job.kernel),
            n_states=job.kernel.n_states,
            alpha_indices=indices.astype(np.int64),
            alpha_weights=np.asarray(job.alpha[indices], dtype=float),
            targets=job.targets.copy(),
            options=job.options,
            solver=job.solver,
            policy=job.policy,
        )

    def build(self, evaluator: UEvaluator) -> TransformJob:
        """Reconstitute the job against a process-local evaluator."""
        kernel = evaluator.kernel
        if kernel.n_states != self.n_states:
            raise ValueError(
                f"evaluator kernel has {kernel.n_states} states, "
                f"spec expects {self.n_states}"
            )
        local_digest = _kernel_digest(kernel)
        if local_digest != self.kernel_digest:
            raise ValueError(
                "evaluator kernel digest does not match the job spec "
                f"({local_digest[:12]} != {self.kernel_digest[:12]})"
            )
        alpha = np.zeros(kernel.n_states, dtype=float)
        alpha[self.alpha_indices] = self.alpha_weights
        job = _JOB_KINDS[self.kind](
            kernel=kernel,
            alpha=alpha,
            targets=self.targets,
            options=self.options,
            solver=self.solver,
            policy=self.policy,
        )
        job.attach_evaluator(evaluator)
        return job
