"""Transform-evaluation jobs: the unit of work of the distributed pipeline.

A *job* bundles everything a worker needs to evaluate the Laplace transform
of one measure (a passage time or a transient probability) at an arbitrary
s-point: the kernel, the source weighting, the target set and the truncation
options.  Jobs are picklable, so the multiprocessing backend can ship them to
worker processes once and then stream bare s-values, and they expose a stable
digest used to key the on-disk checkpoint cache.
"""
from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..smp.kernel import SMPKernel, UEvaluator
from ..smp.linear import passage_transform_direct, passage_transform_direct_batch
from ..smp.passage import (
    PassageTimeOptions,
    SPointPolicy,
    passage_transform,
    passage_transform_batch,
)
from ..smp.transient import transient_transform, transient_transform_batch

__all__ = ["TransformJob", "PassageTimeJob", "TransientJob"]

#: Relative cost, in matvec-equivalents, attributed to one sparse-LU solve
#: when apportioning a batch's wall-clock time over its s-points.  Only the
#: *shape* matters (the simulated cluster replays relative durations); a
#: factorisation is far more expensive than a single sparse matvec but
#: independent of ``|s|``.
_DIRECT_SOLVE_COST = 100.0


def _kernel_digest(kernel: SMPKernel) -> str:
    """A stable content hash of the kernel's structure and distributions.

    Memoised on the kernel object: a long-lived analysis service re-digests
    the same kernel on every query, and the arrays are immutable after build.
    """
    cached = getattr(kernel, "_content_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(np.int64(kernel.n_states).tobytes())
    h.update(kernel.src.tobytes())
    h.update(kernel.dst.tobytes())
    h.update(kernel.probs.tobytes())
    h.update(kernel.dist_index.tobytes())
    for dist in kernel.distributions:
        h.update(repr(dist._key()).encode())
    digest = h.hexdigest()
    kernel._content_digest = digest
    return digest


@dataclass
class TransformJob(abc.ABC):
    """A transform-evaluation task: ``evaluate(s)`` for arbitrary complex ``s``."""

    kernel: SMPKernel
    alpha: np.ndarray
    targets: np.ndarray
    options: PassageTimeOptions = field(default_factory=PassageTimeOptions)
    solver: str = "iterative"
    #: iterative/direct routing used by the batched path; ``None`` means the
    #: engine default (small-|s| points go to the sparse-LU solve)
    policy: SPointPolicy | None = None

    def __post_init__(self):
        self.alpha = np.asarray(self.alpha, dtype=float)
        self.targets = np.unique(np.atleast_1d(np.asarray(self.targets, dtype=np.int64)))
        if self.solver not in ("iterative", "direct"):
            raise ValueError("solver must be 'iterative' or 'direct'")
        if self.alpha.shape != (self.kernel.n_states,):
            raise ValueError("alpha must have one weight per state")
        if self.targets.size == 0:
            raise ValueError("at least one target state is required")
        self._evaluator: UEvaluator | None = None
        #: filled by every evaluate_batch call: which evaluation engine served
        #: it plus per-block solve timings ({"engine": ..., "blocks": [...]});
        #: surfaced through service/query statistics
        self.last_report: dict | None = None

    # ------------------------------------------------------------ plumbing
    @property
    def evaluator(self) -> UEvaluator:
        """Lazily constructed (and per-process) U/U' evaluator."""
        if getattr(self, "_evaluator", None) is None:
            self._evaluator = self.kernel.evaluator()
        return self._evaluator

    def attach_evaluator(self, evaluator: UEvaluator) -> None:
        """Install a shared (per-kernel) evaluator instead of building one.

        The analysis service keeps one :class:`UEvaluator` per registered
        model so every measure on that kernel reuses the CSR structure, the
        cached ``U(s)`` grid data and the symbolic direct-solve structure.
        Callers sharing an evaluator across threads must serialise their
        evaluations (its grid caches are not thread-safe).  Like the lazily
        built evaluator, an attached one is dropped on pickling.
        """
        if evaluator.kernel is not self.kernel:
            raise ValueError("evaluator was built for a different kernel")
        self._evaluator = evaluator

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_evaluator"] = None  # rebuild lazily in the worker process
        return state

    def digest(self) -> str:
        """Content hash identifying this measure (kernel + sources + targets)."""
        h = hashlib.sha256()
        h.update(self.kind().encode())
        h.update(_kernel_digest(self.kernel).encode())
        h.update(self.alpha.tobytes())
        h.update(self.targets.tobytes())
        # The routing policy changes which points come back exact vs
        # truncated, so checkpoints must not be shared across policies.
        h.update(f"{self.options.epsilon}:{self.solver}:{self.policy!r}".encode())
        return h.hexdigest()[:32]

    # ----------------------------------------------------------------- API
    @abc.abstractmethod
    def kind(self) -> str:
        """Short label ("passage" / "transient") used in digests and logs."""

    @abc.abstractmethod
    def evaluate(self, s: complex) -> complex:
        """The transform value at ``s``."""

    @abc.abstractmethod
    def evaluate_batch(self, s_values) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate a whole s-grid in one sweep via the batched engine.

        Returns ``(values, costs)``: the transform values (in input order)
        and non-negative relative per-point costs (matvec-equivalents) that
        backends use to apportion the batch's wall-clock time.
        """

    def evaluate_many(self, s_values) -> dict[complex, complex]:
        """Evaluate a batch of s-points, returned as an ``{s: L(s)}`` mapping."""
        s_list = [complex(s) for s in s_values]
        values, _ = self.evaluate_batch(np.asarray(s_list, dtype=complex))
        return {s: complex(v) for s, v in zip(s_list, values)}


class PassageTimeJob(TransformJob):
    """Evaluates the first-passage-time transform ``L_{i->j}(s)``."""

    def kind(self) -> str:
        return "passage"

    def evaluate(self, s: complex) -> complex:
        s = complex(s)
        if s == 0:
            # L(0) is the probability of ever reaching the target set, which
            # is one in the irreducible chains this library targets.
            return 1.0 + 0.0j
        if self.solver == "direct":
            vec = passage_transform_direct(self.evaluator, self.targets, s)
            return complex(np.dot(self.alpha, vec))
        value, _ = passage_transform(
            self.evaluator, self.alpha, self.targets, s, self.options
        )
        return value

    def evaluate_batch(self, s_values) -> tuple[np.ndarray, np.ndarray]:
        s_values = np.asarray(s_values, dtype=complex).ravel()
        values = np.empty(s_values.shape, dtype=complex)
        costs = np.zeros(s_values.shape, dtype=float)
        nonzero = np.flatnonzero(s_values != 0)
        values[s_values == 0] = 1.0 + 0.0j  # reached almost surely, as in evaluate()
        if nonzero.size == 0:
            return values, costs
        s_work = s_values[nonzero]
        alpha = np.asarray(self.alpha, dtype=complex)
        if self.solver == "direct":
            import time as _time

            started = _time.perf_counter()
            vecs = passage_transform_direct_batch(self.evaluator, self.targets, s_work)
            values[nonzero] = vecs @ alpha
            costs[nonzero] = _DIRECT_SOLVE_COST
            self.last_report = {
                "engine": "direct-lu",
                "blocks": [{
                    "points": int(s_work.size),
                    "seconds": round(_time.perf_counter() - started, 6),
                    "iterations": 0,
                    "direct_solves": int(s_work.size),
                }],
            }
            return values, costs
        report: dict = {}
        vals, diags = passage_transform_batch(
            self.evaluator, alpha, self.targets, s_work, self.options,
            policy=self.policy, report=report,
        )
        self.last_report = report
        values[nonzero] = vals
        costs[nonzero] = [
            d.matvec_count + d.direct_solves * _DIRECT_SOLVE_COST for d in diags
        ]
        return values, costs


class TransientJob(TransformJob):
    """Evaluates the transient-probability transform ``T*_{i->j}(s)``."""

    def kind(self) -> str:
        return "transient"

    def evaluate(self, s: complex) -> complex:
        return transient_transform(
            self.evaluator,
            self.alpha,
            self.targets,
            complex(s),
            self.options,
            solver=self.solver,
        )

    def evaluate_batch(self, s_values) -> tuple[np.ndarray, np.ndarray]:
        s_values = np.asarray(s_values, dtype=complex).ravel()
        report: dict = {}
        values, diags = transient_transform_batch(
            self.evaluator,
            self.alpha,
            self.targets,
            s_values,
            self.options,
            solver=self.solver,
            policy=self.policy,
            report=report,
        )
        self.last_report = report
        costs = np.asarray(
            [d.matvec_count + d.direct_solves * _DIRECT_SOLVE_COST for d in diags],
            dtype=float,
        )
        return values, costs
