"""Transform-evaluation jobs: the unit of work of the distributed pipeline.

A *job* bundles everything a worker needs to evaluate the Laplace transform
of one measure (a passage time or a transient probability) at an arbitrary
s-point: the kernel, the source weighting, the target set and the truncation
options.  Jobs are picklable, so the multiprocessing backend can ship them to
worker processes once and then stream bare s-values, and they expose a stable
digest used to key the on-disk checkpoint cache.
"""
from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..smp.kernel import SMPKernel, UEvaluator
from ..smp.linear import passage_transform_direct
from ..smp.passage import PassageTimeOptions, passage_transform, passage_transform_vector
from ..smp.transient import transient_transform

__all__ = ["TransformJob", "PassageTimeJob", "TransientJob"]


def _kernel_digest(kernel: SMPKernel) -> str:
    """A stable content hash of the kernel's structure and distributions."""
    h = hashlib.sha256()
    h.update(np.int64(kernel.n_states).tobytes())
    h.update(kernel.src.tobytes())
    h.update(kernel.dst.tobytes())
    h.update(kernel.probs.tobytes())
    h.update(kernel.dist_index.tobytes())
    for dist in kernel.distributions:
        h.update(repr(dist._key()).encode())
    return h.hexdigest()


@dataclass
class TransformJob(abc.ABC):
    """A transform-evaluation task: ``evaluate(s)`` for arbitrary complex ``s``."""

    kernel: SMPKernel
    alpha: np.ndarray
    targets: np.ndarray
    options: PassageTimeOptions = field(default_factory=PassageTimeOptions)
    solver: str = "iterative"

    def __post_init__(self):
        self.alpha = np.asarray(self.alpha, dtype=float)
        self.targets = np.unique(np.atleast_1d(np.asarray(self.targets, dtype=np.int64)))
        if self.solver not in ("iterative", "direct"):
            raise ValueError("solver must be 'iterative' or 'direct'")
        if self.alpha.shape != (self.kernel.n_states,):
            raise ValueError("alpha must have one weight per state")
        if self.targets.size == 0:
            raise ValueError("at least one target state is required")
        self._evaluator: UEvaluator | None = None

    # ------------------------------------------------------------ plumbing
    @property
    def evaluator(self) -> UEvaluator:
        """Lazily constructed (and per-process) U/U' evaluator."""
        if getattr(self, "_evaluator", None) is None:
            self._evaluator = self.kernel.evaluator()
        return self._evaluator

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_evaluator"] = None  # rebuild lazily in the worker process
        return state

    def digest(self) -> str:
        """Content hash identifying this measure (kernel + sources + targets)."""
        h = hashlib.sha256()
        h.update(self.kind().encode())
        h.update(_kernel_digest(self.kernel).encode())
        h.update(self.alpha.tobytes())
        h.update(self.targets.tobytes())
        h.update(f"{self.options.epsilon}:{self.solver}".encode())
        return h.hexdigest()[:32]

    # ----------------------------------------------------------------- API
    @abc.abstractmethod
    def kind(self) -> str:
        """Short label ("passage" / "transient") used in digests and logs."""

    @abc.abstractmethod
    def evaluate(self, s: complex) -> complex:
        """The transform value at ``s``."""

    def evaluate_many(self, s_values) -> dict[complex, complex]:
        """Evaluate a batch of s-points serially (used by the serial backend)."""
        return {complex(s): self.evaluate(complex(s)) for s in s_values}


class PassageTimeJob(TransformJob):
    """Evaluates the first-passage-time transform ``L_{i->j}(s)``."""

    def kind(self) -> str:
        return "passage"

    def evaluate(self, s: complex) -> complex:
        s = complex(s)
        if s == 0:
            # L(0) is the probability of ever reaching the target set, which
            # is one in the irreducible chains this library targets.
            return 1.0 + 0.0j
        if self.solver == "direct":
            vec = passage_transform_direct(self.evaluator, self.targets, s)
            return complex(np.dot(self.alpha, vec))
        value, _ = passage_transform(
            self.evaluator, self.alpha, self.targets, s, self.options
        )
        return value


class TransientJob(TransformJob):
    """Evaluates the transient-probability transform ``T*_{i->j}(s)``."""

    def kind(self) -> str:
        return "transient"

    def evaluate(self, s: complex) -> complex:
        return transient_transform(
            self.evaluator,
            self.alpha,
            self.targets,
            complex(s),
            self.options,
            solver=self.solver,
        )
