"""Query planning: from a t-grid to the canonical s-grid, before any work.

The paper's pipeline is *plan-then-evaluate*: the inversion algorithm fixes
which transform evaluations ``L(s)`` are needed for a given t-grid, the
master distributes exactly those, and the inverter assembles the answer from
the returned values.  :class:`QueryPlan` reifies that first step so every
execution engine (in-process, multiprocessing, distributed, remote) and the
analysis service derive the *same* canonical s-grid from the same query —
the property that makes result caches and coalescing correct across entry
points.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.jobs import PassageTimeJob, TransformJob, TransientJob
from ..laplace.inverter import Inverter, canonical_s, conjugate_reduced
from ..smp import PassageTimeOptions, source_weights
from .errors import PlanError

__all__ = ["QueryPlan", "build_job"]

_JOB_TYPES = {"passage": PassageTimeJob, "transient": TransientJob}


@dataclass(frozen=True)
class QueryPlan:
    """The evaluation schedule derived from a query before any evaluation.

    Attributes
    ----------
    t_points:
        The requested time grid.
    inverter:
        The configured inversion algorithm that produced the s-grid.
    required_s_points:
        Every s-point the inverter will look up, in inverter order (one block
        of ``points_per_t`` per t-point for Euler; t-independent for
        Laguerre).
    s_points:
        The de-duplicated, conjugate-folded subset that actually needs
        evaluating — ``L(conj(s)) = conj(L(s))`` for real measures, so only
        one member of each conjugate pair is scheduled.
    """

    t_points: np.ndarray
    inverter: Inverter
    required_s_points: np.ndarray = field(repr=False)
    s_points: np.ndarray = field(repr=False)

    @classmethod
    def derive(cls, inverter: Inverter, t_points) -> "QueryPlan":
        """Derive the canonical evaluation grid for ``t_points``."""
        t_points = np.asarray(list(np.atleast_1d(t_points)), dtype=float)
        if t_points.size == 0:
            raise PlanError("a query plan needs at least one t-point")
        if not np.all(np.isfinite(t_points)) or np.any(t_points <= 0):
            raise PlanError("t-points must be finite and strictly positive")
        required = inverter.required_s_points(t_points)
        return cls(
            t_points=t_points,
            inverter=inverter,
            required_s_points=required,
            s_points=conjugate_reduced(required),
        )

    # -------------------------------------------------------------- queries
    @property
    def n_evaluations(self) -> int:
        """Transform evaluations needed after dedup and conjugate folding."""
        return int(self.s_points.size)

    @property
    def conjugates_folded(self) -> int:
        return int(self.required_s_points.size - self.s_points.size)

    def canonical_keys(self) -> set[complex]:
        """The canonical cache keys of the scheduled evaluations."""
        return {canonical_s(s) for s in self.s_points}

    def describe(self) -> dict:
        return {
            "t_points": [float(t) for t in self.t_points],
            "inversion": self.inverter.name,
            "s_points_required": int(self.required_s_points.size),
            "s_points_scheduled": self.n_evaluations,
            "conjugates_folded": self.conjugates_folded,
        }


def build_job(
    entry,
    kind: str,
    sources,
    targets,
    *,
    solver: str = "iterative",
    epsilon: float = 1e-8,
    policy=None,
) -> TransformJob:
    """Construct the transform-evaluation job for a measure on a built model.

    ``entry`` is a :class:`~repro.service.registry.ModelEntry`; the entry's
    shared :class:`~repro.smp.kernel.UEvaluator` is attached so every measure
    on the kernel reuses its CSR structure and cached ``U(s)`` grids.  Used
    by the local execution engines and by the analysis service — the single
    place a query's parameters become a job.
    """
    job_type = _JOB_TYPES.get(kind)
    if job_type is None:
        raise PlanError(f"unknown measure kind {kind!r}; expected 'passage' or 'transient'")
    if solver not in ("iterative", "direct"):
        raise PlanError("solver must be 'iterative' or 'direct'")
    try:
        epsilon = float(epsilon)
    except (TypeError, ValueError):
        raise PlanError("epsilon must be a number") from None
    job = job_type(
        kernel=entry.kernel,
        alpha=source_weights(entry.kernel, sources),
        targets=targets,
        options=PassageTimeOptions(epsilon=epsilon),
        solver=solver,
        policy=policy,
    )
    job.attach_evaluator(entry.evaluator)
    return job
