"""The public analysis API: ``Model`` → ``Query`` → ``Engine`` → result.

This package is the single supported entry surface over the whole pipeline
(dnamaca spec → reachability → SMP kernel → s-point transform evaluation →
Laplace inversion).  The CLI, the analysis service, the examples and the
benchmarks are all thin layers over it::

    from repro.api import Model

    model = Model.from_file("voting.dnamaca", overrides={"CC": 6})
    result = (model.passage("p1 == CC", "p2 == CC")
                   .density([5, 10, 20])
                   .cdf()
                   .quantile(0.95)
                   .run())                     # or engine="remote", url=...

    print(result.as_table(), result.quantiles)

Three ideas carry the design:

* **Models are content-addressed and lazy.**  ``Model.from_spec`` never
  explores the state space; the first local evaluation registers the spec
  with a process-wide registry, so every later model/query on the same spec
  (plus overrides and state cap) reuses one graph, kernel and evaluator.
* **Queries are immutable plans.**  A query only records *what* to compute;
  ``query.plan()`` derives the exact canonical s-grid the inversion needs
  before any work happens — the contract that makes caching, coalescing and
  distribution correct.
* **Engines are pluggable.**  ``run(engine="inline" | "multiprocessing" |
  "distributed" | "remote")`` selects *how* the s-grid is evaluated; all
  engines return the same result objects with the same numbers.  New
  execution modes register via :func:`register_engine`.
"""
from ..dnamaca.expressions import parse_overrides
from .engines import (
    DistributedEngine,
    Engine,
    InlineEngine,
    MultiprocessingEngine,
    RemoteEngine,
    available_engines,
    get_engine,
    register_engine,
)
from .errors import ApiError, EngineError, ModelError, PlanError, PredicateError
from .model import Model, default_registry, resolve_state_sets
from .plan import QueryPlan, build_job
from .queries import PassageQuery, SimulationQuery, SimulationResult, TransientQuery

__all__ = [
    "ApiError",
    "DistributedEngine",
    "Engine",
    "EngineError",
    "InlineEngine",
    "Model",
    "ModelError",
    "MultiprocessingEngine",
    "PassageQuery",
    "PlanError",
    "PredicateError",
    "QueryPlan",
    "RemoteEngine",
    "SimulationQuery",
    "SimulationResult",
    "TransientQuery",
    "available_engines",
    "build_job",
    "default_registry",
    "get_engine",
    "parse_overrides",
    "register_engine",
    "resolve_state_sets",
]
