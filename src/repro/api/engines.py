"""Pluggable execution engines: one query, four ways to run it.

An :class:`Engine` turns a lazy query into a result object.  Engines are
selected by name through a registry, so new execution modes (async pools,
sharded clusters, ...) plug in at this single seam::

    result = query.run()                              # inline, this process
    result = query.run(engine="multiprocessing", processes=8)
    result = query.run(engine="distributed", checkpoint="/var/ckpt")
    result = query.run(engine="remote", url="http://analysis:8400")

All engines return the same result types (:class:`PassageTimeResult` /
:class:`TransientResult`) with the same numbers — the engine-parity tests
hold them to 1e-10 of each other.
"""
from __future__ import annotations

import abc
import threading

import numpy as np
from scipy import optimize

from ..core.results import PassageTimeResult, TransientResult
from ..distributed.backends import MultiprocessingBackend, SerialBackend
from ..distributed.checkpoint import CheckpointStore
from ..distributed.pipeline import DistributedPipeline
from ..laplace.inverter import canonical_s, conjugate_reduced, expand_to_grid
from ..obs import trace as obs_trace
from ..obs.metrics import merge_worker_stats
from ..utils.timing import Stopwatch
from .errors import ApiError, EngineError
from .model import resolve_state_sets
from .plan import QueryPlan, build_job

__all__ = [
    "Engine",
    "InlineEngine",
    "MultiprocessingEngine",
    "DistributedEngine",
    "RemoteEngine",
    "get_engine",
    "register_engine",
    "available_engines",
]


class Engine(abc.ABC):
    """Executes measure queries; subclasses define *where* the work happens."""

    #: registry name; also stamped into every result's statistics
    name: str = "abstract"

    def run(self, query):
        """Dispatch on the query's measure kind."""
        kind = getattr(query, "kind", None)
        if kind == "passage":
            return self.run_passage(query)
        if kind == "transient":
            return self.run_transient(query)
        raise EngineError(
            f"engine {self.name!r} cannot run {type(query).__name__} queries"
        )

    @abc.abstractmethod
    def run_passage(self, query) -> PassageTimeResult:
        """Evaluate a passage-time query."""

    @abc.abstractmethod
    def run_transient(self, query) -> TransientResult:
        """Evaluate a transient-probability query."""


def _refine_quantile(q, t_points, cdf_at) -> float:
    """Root-find ``F(t) = q`` bracketed by the query's t-grid (paper §5.3.1)."""
    t_lower = float(np.min(t_points))
    t_upper = float(np.max(t_points)) * 10.0
    lo = cdf_at(t_lower) - q
    hi = cdf_at(t_upper) - q
    if lo > 0 or hi < 0:
        raise ApiError(
            f"quantile {q} is not bracketed by [{t_lower:.6g}, {t_upper:.6g}] "
            f"(F(lower)-q={lo:.4g}, F(upper)-q={hi:.4g})"
        )
    return float(optimize.brentq(lambda t: cdf_at(t) - q, t_lower, t_upper, xtol=1e-6))


class _LocalEngine(Engine):
    """Shared machinery of the engines that evaluate s-points in this process
    tree: resolve the state sets, build the job, derive the plan, gather the
    (conjugate-folded, canonically cached) transform values, invert."""

    def _evaluate(self, job, s_points: list[complex]) -> dict[complex, complex]:
        raise NotImplementedError  # pragma: no cover - subclass responsibility

    def _context(self, query):
        entry = query.model.entry
        sources, targets = resolve_state_sets(entry, query.source, query.target)
        job = build_job(
            entry, query.kind, sources, targets,
            solver=query.solver, epsilon=query.epsilon,
        )
        return entry, targets, job, query.make_inverter()

    def _gather(self, job, required, cache, stats) -> dict[complex, complex]:
        """Transform values for every required point, evaluating each at most once.

        The exact grid points are evaluated (never their canonically rounded
        cache keys — rounding perturbs components of very different scales on
        the Laguerre contour); the cache and every other evaluation path key
        by :func:`canonical_s`, which is what makes engine results identical.
        """
        folded = conjugate_reduced(np.asarray(required, dtype=complex))
        missing = [complex(s) for s in folded if canonical_s(s) not in cache]
        if missing:
            stopwatch = Stopwatch()
            with stopwatch, obs_trace.span(
                "evaluate", engine=self.name, n_points=len(missing)
            ):
                computed = self._evaluate(job, missing)
            for s, value in computed.items():
                cache[canonical_s(s)] = complex(value)
            stats["s_points_computed"] += len(missing)
            stats["evaluation_seconds"] += stopwatch.elapsed
            report = getattr(job, "last_report", None)
            if report and report.get("engine"):
                stats["evaluator_engine"] = report["engine"]
                stats.setdefault("solve_blocks", []).extend(report.get("blocks") or [])
            if report and report.get("workers"):
                merge_worker_stats(stats.setdefault("workers", {}), report["workers"])
        return expand_to_grid(required, cache)

    def _new_stats(self, query, plan: QueryPlan) -> dict:
        return {
            "engine": self.name,
            "backend": self.name,
            "solver": query.solver,
            "s_points_required": int(plan.required_s_points.size),
            "s_points_computed": 0,
            "conjugates_folded": plan.conjugates_folded,
            "evaluation_seconds": 0.0,
            "inversion_seconds": 0.0,
        }

    def _invert(self, inverter, t_points, values, stats) -> np.ndarray:
        stopwatch = Stopwatch()
        with stopwatch, obs_trace.span(
            "inversion", method=inverter.name, n_t_points=int(np.asarray(t_points).size)
        ):
            result = inverter.invert_values(t_points, values)
        stats["inversion_seconds"] += stopwatch.elapsed
        return result

    # -------------------------------------------------------------- passage
    def run_passage(self, query) -> PassageTimeResult:
        t_points = query.grid()
        _entry, _targets, job, inverter = self._context(query)
        plan = QueryPlan.derive(inverter, t_points)
        stats = self._new_stats(query, plan)
        cache: dict[complex, complex] = {}

        values = self._gather(job, plan.required_s_points, cache, stats)
        density = (
            self._invert(inverter, t_points, values, stats)
            if query.include_density else None
        )
        cdf = None
        if query.include_cdf:
            cdf_values = {s: v / s for s, v in values.items() if s != 0}
            cdf = self._invert(inverter, t_points, cdf_values, stats)

        quantiles: dict[float, float] = {}
        if query.quantiles:
            def cdf_at(t: float) -> float:
                grid = np.asarray([t], dtype=float)
                probe = self._gather(
                    job, inverter.required_s_points(grid), cache, stats
                )
                probe_cdf = {s: v / s for s, v in probe.items() if s != 0}
                return float(self._invert(inverter, grid, probe_cdf, stats)[0])

            for q in query.quantiles:
                quantiles[q] = _refine_quantile(q, t_points, cdf_at)

        return PassageTimeResult(
            t_points=t_points,
            density=density,
            cdf=cdf,
            transform_values={s: v for s, v in values.items()},
            method=inverter.name,
            quantiles=quantiles,
            statistics=stats,
        )

    # ------------------------------------------------------------ transient
    def run_transient(self, query) -> TransientResult:
        t_points = query.grid()
        entry, targets, job, inverter = self._context(query)
        plan = QueryPlan.derive(inverter, t_points)
        stats = self._new_stats(query, plan)
        cache: dict[complex, complex] = {}

        values = self._gather(job, plan.required_s_points, cache, stats)
        probability = self._invert(inverter, t_points, values, stats)
        steady = entry.steady_state(targets) if query.include_steady_state else None
        return TransientResult(
            t_points=t_points,
            probability=probability,
            steady_state=steady,
            transform_values={s: v for s, v in values.items()},
            method=inverter.name,
            statistics=stats,
        )


class InlineEngine(_LocalEngine):
    """Evaluate every s-point in the calling process via the batched engine."""

    name = "inline"

    def _evaluate(self, job, s_points):
        return job.evaluate_many(s_points)


class MultiprocessingEngine(_LocalEngine):
    """Evaluate the s-grid on a pool of worker processes.

    The pool shares one kernel plane (workers attach the exported kernel
    zero-copy instead of receiving a pickled model copy) and the unit of
    dispatch is a memory-budgeted s-block.  ``workers`` and ``processes``
    are synonyms; ``block_size`` (alias ``chunk_size``) overrides the
    policy-computed block, mainly for tests.  Quantile-refinement probes are
    tiny (33 points each) and are evaluated inline rather than paying a pool
    round-trip.
    """

    name = "multiprocessing"

    def __init__(
        self,
        *,
        workers: int | None = None,
        processes: int | None = None,
        block_size: int | None = None,
        chunk_size: int | None = None,
    ):
        if workers is not None and processes is not None and workers != processes:
            raise EngineError("workers and processes are synonyms; pass one")
        self._backend = MultiprocessingBackend(
            processes=workers if workers is not None else processes,
            block_size=block_size,
            chunk_size=chunk_size,
        )
        # Per-run dispatch state is thread-local so one engine instance can
        # serve concurrent threads without mixing up pool-vs-inline routing.
        self._run_state = threading.local()

    def _evaluate(self, job, s_points):
        if getattr(self._run_state, "main_grid_done", True):
            return job.evaluate_many(s_points)
        self._run_state.main_grid_done = True
        return self._backend.evaluate(job, s_points)

    def run_passage(self, query):
        self._run_state.main_grid_done = False
        return super().run_passage(query)

    def run_transient(self, query):
        self._run_state.main_grid_done = False
        return super().run_transient(query)


class DistributedEngine(Engine):
    """Run through the master/worker :class:`DistributedPipeline`.

    Adds what the paper's master adds: a work queue, conjugate folding,
    on-disk checkpoint/resume (now block-granular: each completed s-block is
    merged as it arrives), and per-task accounting.  ``backend`` accepts any
    pipeline backend; ``workers > 1`` builds a block-dispatching
    multiprocessing backend — with a checkpoint configured, its kernel plane
    is exported as an mmap'd file under ``<checkpoint>/planes`` so any
    process on the host (or a checkpoint-sharing fleet) can attach by
    digest; the default backend is the timing-recording serial one.
    """

    name = "distributed"

    def __init__(
        self,
        *,
        backend=None,
        workers: int | None = None,
        block_size: int | None = None,
        chunk_size: int | None = None,
        checkpoint: str | CheckpointStore | None = None,
        fold_conjugates: bool = True,
        progress=None,
    ):
        #: optional :class:`~repro.obs.progress.ProgressReporter` advanced per
        #: completed s-block (pool backends) or per evaluation round
        self.progress = progress
        self.checkpoint = (
            CheckpointStore(checkpoint)
            if isinstance(checkpoint, (str, bytes)) or hasattr(checkpoint, "__fspath__")
            else checkpoint
        )
        if backend is None and workers and workers > 1:
            plane_store = (
                str(self.checkpoint.directory / "planes")
                if self.checkpoint is not None
                else None
            )
            backend = MultiprocessingBackend(
                processes=workers,
                block_size=block_size,
                chunk_size=chunk_size,
                plane_store=plane_store,
            )
        self.backend = backend
        self.fold_conjugates = fold_conjugates

    def _pipeline(self, query, job) -> DistributedPipeline:
        return DistributedPipeline(
            job,
            inversion=query.inversion,
            inverter_options=dict(query.inverter_options),
            backend=self.backend or SerialBackend(record_timings=True),
            checkpoint=self.checkpoint,
            fold_conjugates=self.fold_conjugates,
            progress=self.progress,
        )

    def _context(self, query):
        entry = query.model.entry
        sources, targets = resolve_state_sets(entry, query.source, query.target)
        job = build_job(
            entry, query.kind, sources, targets,
            solver=query.solver, epsilon=query.epsilon,
        )
        return entry, targets, job

    def _statistics(self, pipeline, job=None) -> dict:
        stats = pipeline.statistics_summary()
        stats["engine"] = self.name
        report = getattr(job, "last_report", None)
        if report and report.get("engine"):
            # In-process backends leave the most recent evaluation's report
            # on the job (pool workers keep theirs remote).  The pipeline
            # dispatches many chunked evaluate_batch calls, so only the
            # engine label — stable across calls — is trustworthy here;
            # per-block timings would cover just the final chunk.
            stats["evaluator_engine"] = report["engine"]
        return stats

    def run_passage(self, query) -> PassageTimeResult:
        t_points = query.grid()
        _entry, _targets, job = self._context(query)
        pipeline = self._pipeline(query, job)

        density = pipeline.density(t_points) if query.include_density else None
        cdf = pipeline.cdf(t_points) if query.include_cdf else None

        quantiles: dict[float, float] = {}
        probe_points = 0
        if query.quantiles:
            # Quantile probes are single-t grids (33 points under Euler); they
            # are evaluated in-process against the pipeline's value cache
            # rather than dispatched, matching the cost profile of the CLI's
            # historical root-find.  They bypass the pipeline's checkpoint
            # and its s_points_computed counter by design; the extra work is
            # reported separately as ``s_points_probed``.
            inverter = pipeline.inverter
            cache = pipeline.transform_values()

            def cdf_at(t: float) -> float:
                nonlocal probe_points
                grid = np.asarray([t], dtype=float)
                required = inverter.required_s_points(grid)
                missing = [
                    complex(s)
                    for s in conjugate_reduced(required)
                    if canonical_s(s) not in cache
                ]
                for s, v in job.evaluate_many(missing).items():
                    cache[canonical_s(s)] = complex(v)
                probe_points += len(missing)
                probe = {
                    s: v / s
                    for s, v in expand_to_grid(required, cache).items()
                    if s != 0
                }
                return float(inverter.invert_values(grid, probe)[0])

            for q in query.quantiles:
                quantiles[q] = _refine_quantile(q, t_points, cdf_at)

        statistics = self._statistics(pipeline, job)
        statistics["s_points_probed"] = probe_points
        return PassageTimeResult(
            t_points=t_points,
            density=density,
            cdf=cdf,
            transform_values=pipeline.transform_values(),
            method=pipeline.inverter.name,
            quantiles=quantiles,
            statistics=statistics,
        )

    def run_transient(self, query) -> TransientResult:
        t_points = query.grid()
        entry, targets, job = self._context(query)
        pipeline = self._pipeline(query, job)
        probability = pipeline.density(t_points)
        steady = entry.steady_state(targets) if query.include_steady_state else None
        return TransientResult(
            t_points=t_points,
            probability=probability,
            steady_state=steady,
            transform_values=pipeline.transform_values(),
            method=pipeline.inverter.name,
            statistics=self._statistics(pipeline, job),
        )


class RemoteEngine(Engine):
    """Ship the query to a running analysis server over its HTTP JSON API.

    The server amortises model building across all clients (content-addressed
    registry), coalesces overlapping s-points of concurrent queries and keeps
    a tiered result cache — so a warm remote query answers without a single
    transform evaluation.  Requires the query's model to carry its spec text
    (``Model.from_spec``/``from_file``) or reference an already-registered
    digest (``Model.from_digest``).
    """

    name = "remote"

    def __init__(
        self,
        *,
        url: str = "http://127.0.0.1:8400",
        timeout: float = 120.0,
        tenant: str | None = None,
        client=None,
    ):
        if client is None:
            from ..service.client import ServiceClient

            client = ServiceClient(url, timeout=timeout, tenant=tenant)
        self.client = client

    def _call(self, method: str, **payload):
        from ..service.client import ServiceClientError

        try:
            return getattr(self.client, method)(**payload)
        except ServiceClientError as exc:
            raise EngineError(str(exc)) from None

    def _reference(self, query) -> dict:
        if query.inverter_options:
            raise EngineError(
                "the remote engine does not support custom inverter options; "
                "configure the server-side defaults instead"
            )
        ref = query.model.reference()
        return {
            "model": ref.get("model"),
            "spec": ref.get("spec"),
            "overrides": ref.get("overrides"),
            "max_states": ref.get("max_states"),
        }

    def run_passage(self, query) -> PassageTimeResult:
        t_points = query.grid()
        quantiles = list(query.quantiles)
        reply = self._call(
            "passage",
            **self._reference(query),
            source=query.source,
            target=query.target,
            t_points=[float(t) for t in t_points],
            cdf=query.include_cdf,
            quantile=quantiles[0] if quantiles else None,
            solver=query.solver,
            inversion=query.inversion,
            epsilon=query.epsilon,
        )
        out_quantiles: dict[float, float] = {}
        if "quantile" in reply:
            out_quantiles[float(reply["quantile"]["q"])] = float(reply["quantile"]["t"])
        for q in quantiles[1:]:
            # The first reply carries the registered digest; follow-up
            # quantile requests reference it instead of re-sending the spec.
            extra = self._call(
                "passage",
                model=reply.get("model"),
                spec=None,
                overrides=None,
                max_states=None,
                source=query.source,
                target=query.target,
                t_points=[float(t) for t in t_points],
                cdf=False,
                quantile=q,
                solver=query.solver,
                inversion=query.inversion,
                epsilon=query.epsilon,
            )
            out_quantiles[float(extra["quantile"]["q"])] = float(extra["quantile"]["t"])

        stats = dict(reply.get("statistics", {}))
        stats["engine"] = self.name
        stats["model"] = reply.get("model")
        return PassageTimeResult(
            t_points=np.asarray(reply["t_points"], dtype=float),
            density=np.asarray(reply["density"], dtype=float) if query.include_density else None,
            cdf=np.asarray(reply["cdf"], dtype=float) if "cdf" in reply else None,
            method=query.inversion,
            quantiles=out_quantiles,
            statistics=stats,
        )

    def run_transient(self, query) -> TransientResult:
        t_points = query.grid()
        reply = self._call(
            "transient",
            **self._reference(query),
            source=query.source,
            target=query.target,
            t_points=[float(t) for t in t_points],
            steady_state=query.include_steady_state,
            solver=query.solver,
            inversion=query.inversion,
            epsilon=query.epsilon,
        )
        stats = dict(reply.get("statistics", {}))
        stats["engine"] = self.name
        stats["model"] = reply.get("model")
        return TransientResult(
            t_points=np.asarray(reply["t_points"], dtype=float),
            probability=np.asarray(reply["probability"], dtype=float),
            steady_state=(
                float(reply["steady_state"]) if "steady_state" in reply else None
            ),
            method=query.inversion,
            statistics=stats,
        )


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------

_ENGINE_FACTORIES: dict[str, type[Engine]] = {}


def register_engine(name: str, factory, *, replace: bool = False) -> None:
    """Register an engine factory under ``name`` for ``query.run(engine=name)``."""
    if not replace and name in _ENGINE_FACTORIES:
        raise ValueError(f"engine {name!r} is already registered")
    _ENGINE_FACTORIES[name] = factory


def available_engines() -> tuple[str, ...]:
    return tuple(sorted(_ENGINE_FACTORIES))


def get_engine(engine, **options) -> Engine:
    """Resolve an engine by name (constructing it) or pass an instance through."""
    if isinstance(engine, Engine):
        if options:
            raise EngineError(
                "engine options only apply when the engine is selected by name"
            )
        return engine
    factory = _ENGINE_FACTORIES.get(engine)
    if factory is None:
        raise EngineError(
            f"unknown engine {engine!r}; available engines: "
            + ", ".join(available_engines())
        )
    try:
        return factory(**options)
    except TypeError as exc:
        raise EngineError(f"cannot construct engine {engine!r}: {exc}") from None


register_engine("inline", InlineEngine)
register_engine("multiprocessing", MultiprocessingEngine)
register_engine("distributed", DistributedEngine)
register_engine("remote", RemoteEngine)
