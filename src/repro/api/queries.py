"""Lazy query objects: what to compute, decoupled from how to compute it.

A query is an immutable description of a measure — model, source/target
predicates, t-grid, solver, inversion algorithm — built fluently::

    query = (model.passage("p1 == CC", "p2 == CC")
                  .density([5, 10, 20])
                  .cdf()
                  .quantile(0.95))

Nothing is evaluated until :meth:`run`, which hands the query to an
execution engine selected by name (``inline`` / ``multiprocessing`` /
``distributed`` / ``remote``) or by instance.  Because queries are frozen,
the *same* query object can be run on several engines and must return the
same numbers — the engine-parity tests rely on this.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import ClassVar

import numpy as np

from .errors import EngineError, PlanError
from .model import Model
from .plan import QueryPlan

__all__ = [
    "PassageQuery",
    "TransientQuery",
    "SimulationQuery",
    "SimulationResult",
]

_SOLVERS = ("iterative", "direct")


def _as_grid(t_points) -> tuple[float, ...]:
    try:
        grid = tuple(float(t) for t in np.atleast_1d(np.asarray(t_points, dtype=float)))
    except (TypeError, ValueError) as exc:
        raise PlanError(f"t-points must be a sequence of numbers: {exc}") from None
    if not grid:
        raise PlanError("a query needs at least one t-point")
    if not all(np.isfinite(t) and t > 0 for t in grid):
        raise PlanError("t-points must be finite and strictly positive")
    return grid


@dataclass(frozen=True)
class _MeasureQuery:
    """Configuration shared by passage and transient queries."""

    model: Model
    source: str
    target: str
    t_points: tuple[float, ...] | None = None
    solver: str = "iterative"
    inversion: str = "euler"
    inverter_options: tuple[tuple[str, object], ...] = ()
    epsilon: float = 1e-8

    kind: ClassVar[str] = "abstract"

    # ------------------------------------------------------------- builders
    def with_solver(self, solver: str) -> "_MeasureQuery":
        """Select the transform evaluation algorithm (``iterative``/``direct``)."""
        if solver not in _SOLVERS:
            raise PlanError(f"unknown solver {solver!r}; expected one of {_SOLVERS}")
        return replace(self, solver=solver)

    def with_inversion(self, method: str, **options) -> "_MeasureQuery":
        """Select the inversion algorithm (``euler``/``laguerre``) and its options."""
        candidate = replace(
            self, inversion=method, inverter_options=tuple(sorted(options.items()))
        )
        candidate.make_inverter()  # validate name and options eagerly
        return candidate

    def with_epsilon(self, epsilon: float) -> "_MeasureQuery":
        """Truncation tolerance of the iterative transform evaluation."""
        try:
            epsilon = float(epsilon)
        except (TypeError, ValueError):
            raise PlanError("epsilon must be a number") from None
        if epsilon <= 0:
            raise PlanError("epsilon must be positive")
        return replace(self, epsilon=epsilon)

    def with_t_points(self, t_points) -> "_MeasureQuery":
        return replace(self, t_points=_as_grid(t_points))

    # -------------------------------------------------------------- running
    def grid(self) -> np.ndarray:
        if self.t_points is None:
            raise PlanError(
                "this query has no t-points yet; set them with "
                f".{'density' if self.kind == 'passage' else 'probability'}(t_points)"
            )
        return np.asarray(self.t_points, dtype=float)

    def make_inverter(self):
        from ..laplace import get_inverter

        try:
            return get_inverter(self.inversion, **dict(self.inverter_options))
        except ValueError as exc:
            raise PlanError(str(exc)) from None

    def plan(self) -> QueryPlan:
        """Derive the canonical s-grid this query will evaluate (no evaluation)."""
        return QueryPlan.derive(self.make_inverter(), self.grid())

    def run(self, engine="inline", **engine_options):
        """Execute on the selected engine and return the result object."""
        from .engines import get_engine

        return get_engine(engine, **engine_options).run(self)

    def describe(self) -> dict:
        out = {
            "kind": self.kind,
            "model": self.model.digest,
            "source": self.source,
            "target": self.target,
            "t_points": None if self.t_points is None else list(self.t_points),
            "solver": self.solver,
            "inversion": self.inversion,
            "epsilon": self.epsilon,
        }
        if self.inverter_options:
            out["inverter_options"] = dict(self.inverter_options)
        return out


@dataclass(frozen=True)
class PassageQuery(_MeasureQuery):
    """A lazy first-passage-time measure (density / CDF / quantiles)."""

    include_density: bool = True
    include_cdf: bool = False
    quantiles: tuple[float, ...] = ()

    kind: ClassVar[str] = "passage"

    def density(self, t_points=None) -> "PassageQuery":
        """Request the passage-time density, optionally setting the t-grid."""
        out = replace(self, include_density=True)
        return out if t_points is None else replace(out, t_points=_as_grid(t_points))

    def cdf(self, t_points=None) -> "PassageQuery":
        """Request the passage-time CDF, optionally setting the t-grid."""
        out = replace(self, include_cdf=True)
        return out if t_points is None else replace(out, t_points=_as_grid(t_points))

    def quantile(self, q: float) -> "PassageQuery":
        """Request the passage-time quantile ``t`` with ``P(T <= t) = q``."""
        try:
            q = float(q)
        except (TypeError, ValueError):
            raise PlanError("quantile must be a number") from None
        if not 0.0 < q < 1.0:
            raise PlanError("quantile must lie strictly between 0 and 1")
        if q in self.quantiles:
            return self
        return replace(self, quantiles=self.quantiles + (q,))


@dataclass(frozen=True)
class TransientQuery(_MeasureQuery):
    """A lazy transient-probability measure ``P(Z(t) in targets)``."""

    include_steady_state: bool = True

    kind: ClassVar[str] = "transient"

    def probability(self, t_points) -> "TransientQuery":
        """Set the t-grid on which to evaluate the transient probability."""
        return replace(self, t_points=_as_grid(t_points))

    at = probability

    def without_steady_state(self) -> "TransientQuery":
        """Skip the embedded-DTMC steady-state solve."""
        return replace(self, include_steady_state=False)


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------


@dataclass
class SimulationResult:
    """Monte-Carlo passage-time estimate: raw samples plus derived views."""

    samples: np.ndarray
    t_points: np.ndarray | None = None
    cdf: np.ndarray | None = None
    statistics: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        self.samples = np.asarray(self.samples, dtype=float)
        if self.t_points is not None:
            self.t_points = np.asarray(self.t_points, dtype=float)
        if self.cdf is not None:
            self.cdf = np.asarray(self.cdf, dtype=float)

    @property
    def n_replications(self) -> int:
        return int(self.samples.size)

    def mean(self) -> float:
        return float(self.samples.mean())

    def std(self) -> float:
        return float(self.samples.std(ddof=1))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples, q))

    def as_table(self, quantiles=(0.05, 0.25, 0.5, 0.75, 0.95, 0.99)) -> list[list[float]]:
        """Rows ``(q, t_q)`` of empirical quantiles, for printing."""
        return [[float(q), self.quantile(q)] for q in quantiles]


@dataclass(frozen=True)
class SimulationQuery:
    """A lazy Monte-Carlo estimation of the passage time into ``target``.

    Simulation samples trajectories of the SM-SPN directly — it never builds
    the state space, which is what makes it viable on models whose
    reachability graph would not fit in memory.  Only the inline engine can
    run it.
    """

    model: Model
    source: str
    target: str
    replications: int = 2000
    seed: int | None = None
    t_points: tuple[float, ...] | None = None

    kind: ClassVar[str] = "simulation"

    def with_replications(self, n: int) -> "SimulationQuery":
        if int(n) < 1:
            raise PlanError("replications must be >= 1")
        return replace(self, replications=int(n))

    def with_seed(self, seed: int | None) -> "SimulationQuery":
        return replace(self, seed=seed)

    def with_t_points(self, t_points) -> "SimulationQuery":
        return replace(self, t_points=_as_grid(t_points))

    def run(self, engine="inline", **engine_options) -> SimulationResult:
        """Simulate in-process (simulation has no remote/distributed engine yet)."""
        if engine != "inline" or engine_options:
            raise EngineError(
                "simulation queries only support engine='inline'"
            )
        from ..simulation import PetriSimulator, empirical_cdf
        from ..utils.timing import Stopwatch

        simulator = PetriSimulator(self.model.net)
        predicate = self.model.predicate(self.target)
        stopwatch = Stopwatch()
        with stopwatch:
            samples = simulator.sample_passage_times(
                predicate, n_samples=self.replications, rng=self.seed
            )
        t_points = None if self.t_points is None else np.asarray(self.t_points, dtype=float)
        cdf = None if t_points is None else empirical_cdf(samples, t_points)
        return SimulationResult(
            samples=samples,
            t_points=t_points,
            cdf=cdf,
            statistics={
                "engine": "inline",
                "replications": int(self.replications),
                "seed": self.seed,
                "simulation_seconds": stopwatch.elapsed,
            },
        )
