"""The :class:`Model` facade — one entry point from a DNAmaca spec to queries.

``Model.from_spec`` / ``Model.from_file`` wrap the content-addressed model
registry: the reachability graph, SMP kernel and shared ``U(s)`` evaluator
are built at most once per distinct (spec text, constant overrides, state
cap), however many models, queries or engines reference them.  Construction
is *lazy* — creating a model, planning a query, or running it on the remote
engine never explores the state space locally; only local execution (or an
explicit touch of :attr:`Model.entry`) pays the build.

``Model.from_digest`` references a model already registered with an analysis
server by its content digest; such a model can only run queries with
``engine="remote"``.
"""
from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from ..dnamaca import parse_model
from ..dnamaca.expressions import ExpressionError, marking_predicate, parse_overrides
from ..service.registry import ModelEntry, ModelRegistry, spec_digest
from .errors import ModelError, PredicateError

__all__ = ["Model", "resolve_state_sets", "default_registry"]

#: process-wide registry backing ``Model.from_spec`` unless one is injected;
#: repeated facade constructions of the same spec share one build.
_DEFAULT_REGISTRY: ModelRegistry | None = None


def default_registry() -> ModelRegistry:
    """The process-wide model registry used by the facade."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = ModelRegistry()
    return _DEFAULT_REGISTRY


def resolve_state_sets(
    entry: ModelEntry, source: str, target: str
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve source/target predicate expressions to non-empty state sets.

    Shared by the local engines and the analysis service so both report the
    same errors for the same malformed or unsatisfiable predicates.
    """
    for role, expression in (("source", source), ("target", target)):
        if not expression or not isinstance(expression, str):
            raise PredicateError(f"{role} must be a marking-predicate expression")
    try:
        sources = entry.states_matching(source)
        targets = entry.states_matching(target)
    except ExpressionError as exc:
        raise PredicateError(str(exc)) from None
    if sources.size == 0:
        raise PredicateError(
            f"no reachable marking satisfies the source predicate {source!r}"
        )
    if targets.size == 0:
        raise PredicateError(
            f"no reachable marking satisfies the target predicate {target!r}"
        )
    return sources, targets


class Model:
    """A content-addressed semi-Markov model, ready to be queried.

    >>> model = Model.from_file("voting.dnamaca", overrides={"CC": 6})
    >>> result = model.passage("p1 == CC", "p2 == CC").density([5, 10, 20]).run()
    >>> remote = model.passage("p1 == CC", "p2 == CC").density([5, 10, 20])
    ...     .run(engine="remote", url="http://analysis:8400")
    """

    def __init__(
        self,
        *,
        spec_text: str | None = None,
        name: str | None = None,
        overrides: Mapping[str, float] | list[str] | None = None,
        max_states: int | None = None,
        digest: str | None = None,
        registry: ModelRegistry | None = None,
    ):
        if spec_text is None and digest is None:
            raise ModelError("a model needs a specification text or a digest")
        if spec_text is not None and (not isinstance(spec_text, str) or not spec_text.strip()):
            raise ModelError("spec_text must be a non-empty DNAmaca specification string")
        try:
            self._overrides = parse_overrides(overrides)
        except ExpressionError as exc:
            raise ModelError(str(exc)) from None
        self._spec_text = spec_text
        self._name = name
        self._max_states = max_states
        self._digest = digest
        self._registry = registry
        self._entry: ModelEntry | None = None
        self._light_net = None
        self._light_constants: dict[str, float] | None = None

    # ------------------------------------------------------------ builders
    @classmethod
    def from_spec(
        cls,
        text: str,
        *,
        name: str | None = None,
        overrides: Mapping[str, float] | list[str] | None = None,
        max_states: int | None = None,
        registry: ModelRegistry | None = None,
    ) -> "Model":
        """A model from DNAmaca specification text (built lazily, once)."""
        return cls(
            spec_text=text, name=name, overrides=overrides,
            max_states=max_states, registry=registry,
        )

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        *,
        name: str | None = None,
        overrides: Mapping[str, float] | list[str] | None = None,
        max_states: int | None = None,
        registry: ModelRegistry | None = None,
    ) -> "Model":
        """A model from a specification file; the name defaults to the stem."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ModelError(f"cannot read model specification {str(path)!r}: {exc}") from None
        return cls(
            spec_text=text, name=name or path.stem, overrides=overrides,
            max_states=max_states, registry=registry,
        )

    @classmethod
    def from_digest(cls, digest: str) -> "Model":
        """Reference a model a remote analysis server already holds.

        The returned model carries no specification text, so it can only run
        queries with ``engine="remote"``.
        """
        if not digest or not isinstance(digest, str):
            raise ModelError("digest must be a non-empty string")
        return cls(digest=digest)

    # ------------------------------------------------------------ identity
    @property
    def digest(self) -> str:
        """Content address: spec text + overrides + state cap.

        The cap is resolved against the registry's default *before* hashing,
        so the digest computed for a lazy model is identical to the one the
        registry assigns at build time — it never changes after first use.
        """
        if self._digest is None:
            max_states = self._max_states
            if max_states is None:
                registry = self._registry if self._registry is not None else default_registry()
                max_states = registry.default_max_states
            self._digest = spec_digest(self._spec_text, self._overrides, max_states)
        return self._digest

    @property
    def name(self) -> str:
        if self._name:
            return self._name
        if self._entry is not None:
            return self._entry.name
        return f"model-{self.digest[:8]}"

    @property
    def spec_text(self) -> str | None:
        return self._spec_text

    @property
    def overrides(self) -> dict[str, float]:
        return dict(self._overrides)

    @property
    def max_states(self) -> int | None:
        return self._max_states

    @property
    def is_remote_reference(self) -> bool:
        """True when the model is known only by digest (no local build possible)."""
        return self._spec_text is None

    def reference(self) -> dict:
        """The JSON-ready model reference the remote engine sends to a server."""
        if self.is_remote_reference:
            return {"model": self.digest}
        ref: dict = {"spec": self._spec_text}
        if self._overrides:
            ref["overrides"] = dict(self._overrides)
        if self._max_states is not None:
            ref["max_states"] = self._max_states
        return ref

    # --------------------------------------------------------------- build
    @property
    def entry(self) -> ModelEntry:
        """The built model (graph + kernel + evaluator), constructed on first use."""
        if self._entry is None:
            if self.is_remote_reference:
                raise ModelError(
                    f"model {self.digest!r} is known only by digest; it cannot be "
                    "built locally — run its queries with engine='remote'"
                )
            registry = self._registry if self._registry is not None else default_registry()
            try:
                self._entry, _ = registry.register(
                    self._spec_text,
                    name=self._name,
                    overrides=self._overrides,
                    max_states=self._max_states,
                )
            except Exception as exc:
                raise ModelError(f"cannot build model: {exc}") from exc
            self._digest = self._entry.digest
        return self._entry

    @property
    def built(self) -> bool:
        return self._entry is not None

    # ------------------------------------------------------------- queries
    def passage(self, source: str, target: str):
        """A lazy first-passage-time query from ``source`` to ``target`` markings."""
        from .queries import PassageQuery

        return PassageQuery(model=self, source=source, target=target)

    def transient(self, source: str, target: str):
        """A lazy transient-probability query ``P(Z(t) in target | start source)``."""
        from .queries import TransientQuery

        return TransientQuery(model=self, source=source, target=target)

    def simulate(
        self,
        target: str,
        *,
        replications: int = 2000,
        seed: int | None = None,
        t_points=None,
    ):
        """A lazy Monte-Carlo passage-time estimation to ``target`` markings."""
        from .queries import SimulationQuery

        return SimulationQuery(
            model=self,
            source="",
            target=target,
            replications=replications,
            seed=seed,
            t_points=None if t_points is None else tuple(float(t) for t in t_points),
        )

    # ----------------------------------------------- built-model inspection
    @property
    def net(self):
        """The SM-SPN (built lazily *without* exploring the state space)."""
        if self._entry is not None:
            return self._entry.net
        if self._light_net is None:
            if self.is_remote_reference:
                raise ModelError("a digest-only model has no local net")
            from ..dnamaca import load_model

            self._light_net = load_model(
                self._spec_text,
                name=self._name or "model",
                overrides=self._overrides or None,
            )
        return self._light_net

    @property
    def constants(self) -> dict[str, float]:
        """Declared constants with overrides applied (no state-space build)."""
        if self._entry is not None:
            return dict(self._entry.constants)
        if self._light_constants is None:
            if self.is_remote_reference:
                raise ModelError("a digest-only model has no local constants")
            spec = parse_model(self._spec_text, name=self._name or "model")
            constants = dict(spec.constants)
            constants.update(self._overrides)
            self._light_constants = constants
        return dict(self._light_constants)

    @property
    def graph(self):
        """The explored state space (the array-backed :class:`StateSpace`)."""
        return self.entry.graph

    @property
    def kernel(self):
        return self.entry.kernel

    @property
    def n_states(self) -> int:
        return self.entry.kernel.n_states

    def marking_matrix(self) -> np.ndarray:
        """The ``(n_states, n_places)`` marking matrix backing the model.

        This is the columnar store vectorized predicates evaluate against —
        treat it as read-only.
        """
        return self.entry.graph.marking_array()

    def states(self, expression: str) -> np.ndarray:
        """State indices whose marking satisfies a predicate expression."""
        try:
            return self.entry.states_matching(expression)
        except ExpressionError as exc:
            raise PredicateError(str(exc)) from None

    def predicate(self, expression: str):
        """Compile a predicate over markings (usable without a state-space build)."""
        try:
            return marking_predicate(expression, self.constants)
        except ExpressionError as exc:
            raise PredicateError(str(exc)) from None

    def describe(self) -> dict:
        """JSON-ready summary of the built model."""
        return self.entry.describe()

    def __repr__(self) -> str:
        state = "built" if self.built else ("digest-only" if self.is_remote_reference else "lazy")
        return f"Model(name={self.name!r}, digest={self.digest!r}, {state})"
