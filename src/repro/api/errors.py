"""Exception taxonomy of the public analysis API.

Every failure the facade can produce derives from :class:`ApiError`, so
callers (the CLI, scripts, notebooks) need exactly one ``except`` clause.
The transport-specific error types of lower layers (``ServiceClientError``,
``ExpressionError``) are translated at the API boundary.
"""
from __future__ import annotations

__all__ = ["ApiError", "ModelError", "PredicateError", "PlanError", "EngineError"]


class ApiError(Exception):
    """Base class for all errors raised by :mod:`repro.api`."""


class ModelError(ApiError):
    """The model cannot be built or referenced as requested."""


class PredicateError(ApiError):
    """A source/target marking predicate is malformed or matches no state."""


class PlanError(ApiError):
    """The query is under-specified (e.g. no t-points) or inconsistent."""


class EngineError(ApiError):
    """An execution engine cannot run the query (bad name, dead server, ...)."""
