"""Laguerre Laplace-transform inversion (Abate, Choudhury & Whitt, 1996).

The density is expanded in the Laguerre basis ``l_n(t) = e^{-t/2} L_n(t)``:

    f(t) = sum_n q_n l_n(t)

where the coefficients ``q_n`` are the power-series coefficients of the
Laguerre generating function

    Q(z) = (1 - z)^{-1} F( (1 + z) / (2 (1 - z)) ).

``Q`` is sampled at ``N`` points on a circle of radius ``r < 1`` and the
coefficients recovered by an FFT (a discretised Cauchy integral).  Crucially —
and this is the property the paper exploits for its work queue — the set of
transform evaluation points depends only on ``N``, ``r`` and the optional
scaling parameters, *not* on the requested t-points.  The paper uses
``N = 400``, which is the default here.

The "modified" Laguerre method's scaling knobs are exposed as ``damping``
(exponential damping ``e^{-sigma t}``) and ``time_scale`` (evaluate the series
at ``t / b``); both default to the unmodified method.
"""
from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..utils.validation import check_positive
from .inverter import Inverter, canonical_s

__all__ = ["LaguerreInverter", "laguerre_s_points"]


def _contour_points(n_points: int, radius: float) -> np.ndarray:
    j = np.arange(n_points)
    return radius * np.exp(2j * np.pi * j / n_points)


def laguerre_s_points(
    *,
    n_points: int = 400,
    radius: float | None = None,
    damping: float = 0.0,
    time_scale: float = 1.0,
) -> np.ndarray:
    """The transform arguments needed by the Laguerre method (t-independent)."""
    if radius is None:
        radius = (1e-8) ** (1.0 / n_points)
    z = _contour_points(n_points, radius)
    s = (1.0 + z) / (2.0 * (1.0 - z))
    return (s + damping) / time_scale


class LaguerreInverter(Inverter):
    """Laguerre-series Laplace inverter.

    Parameters
    ----------
    n_points:
        Number of contour sample points (and maximum number of Laguerre
        coefficients).  The paper fixes this at 400.
    radius:
        Contour radius; defaults to ``1e-8 ** (1 / n_points)`` which balances
        aliasing error against round-off amplification.
    damping:
        Exponential damping ``sigma``: the method internally inverts
        ``e^{-sigma t} f(t)`` and multiplies the damping back in.  Useful for
        densities whose Laguerre coefficients decay slowly.
    time_scale:
        Time scaling ``b``: the series is evaluated at ``t / b``.  Pick ``b``
        of the order of the density's support so that the scaled argument is
        O(1–100), where the Laguerre basis resolves detail well.
    terms:
        Number of series terms actually summed (defaults to ``n_points``).
    """

    name = "laguerre"

    def __init__(
        self,
        n_points: int = 400,
        radius: float | None = None,
        damping: float = 0.0,
        time_scale: float = 1.0,
        terms: int | None = None,
    ):
        if n_points < 8:
            raise ValueError("n_points must be >= 8")
        self.n_points = int(n_points)
        self.radius = (
            (1e-8) ** (1.0 / self.n_points) if radius is None else float(radius)
        )
        if not 0.0 < self.radius < 1.0:
            raise ValueError("radius must lie in (0, 1)")
        if damping < 0.0:
            raise ValueError("damping must be >= 0")
        self.damping = float(damping)
        self.time_scale = check_positive(time_scale, "time_scale")
        self.terms = self.n_points if terms is None else int(terms)
        if not 1 <= self.terms <= self.n_points:
            raise ValueError("terms must lie in [1, n_points]")

    # ------------------------------------------------------------ protocol
    def required_s_points(self, t_points: Iterable[float]) -> np.ndarray:
        # The grid is independent of the t-points (paper Section 4); the
        # argument is accepted only to satisfy the shared protocol.
        _ = list(t_points)
        return laguerre_s_points(
            n_points=self.n_points,
            radius=self.radius,
            damping=self.damping,
            time_scale=self.time_scale,
        )

    def invert_cdf(self, transform, t_points):
        """Invert a CDF via ``L(s)/s``, automatically damping when needed.

        A CDF tends to one rather than zero, which the raw Laguerre basis
        (whose elements all decay like ``e^{-t/2}``) represents poorly.  The
        standard remedy from the "modified Laguerre" method is exponential
        damping: invert ``e^{-sigma t} F(t)`` and multiply the damping back
        in.  When the user has not already configured damping, a value of
        ``2 / max(t)`` is chosen automatically.
        """
        t_points = list(t_points)
        if self.damping > 0.0 or not t_points:
            return super().invert_cdf(transform, t_points)
        damped = LaguerreInverter(
            n_points=self.n_points,
            radius=self.radius,
            damping=2.0 / max(t_points),
            time_scale=self.time_scale,
            terms=self.terms,
        )
        return damped.invert_cdf(transform, t_points)

    def invert_values(
        self, t_points: Iterable[float], values: Mapping[complex, complex]
    ) -> np.ndarray:
        t_points = np.asarray(list(t_points), dtype=float)
        s_points = self.required_s_points(t_points)
        lookup = {canonical_s(k): complex(v) for k, v in values.items()}
        try:
            f_vals = np.asarray([lookup[canonical_s(s)] for s in s_points], dtype=complex)
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"missing transform value for s-point {exc.args[0]!r}") from None
        coeffs = self._coefficients(f_vals)
        return self._evaluate_series(coeffs, t_points)

    # ------------------------------------------------------------ internals
    def _coefficients(self, transform_values: np.ndarray) -> np.ndarray:
        """Recover the Laguerre coefficients ``q_n`` from contour samples."""
        z = _contour_points(self.n_points, self.radius)
        # transform_values are F((s_j + sigma)/b), which is exactly the
        # transform H(s_j) of the damped, time-scaled function
        # h(u) = b e^{-sigma u} f(b u); the series below therefore recovers h,
        # and _evaluate_series undoes the damping and the 1/b factor.
        h_vals = transform_values
        q_gen = h_vals / (1.0 - z)
        raw = np.fft.fft(q_gen) / self.n_points
        n = np.arange(self.n_points)
        coeffs = (raw * self.radius ** (-n)).real
        return coeffs[: self.terms]

    def _evaluate_series(self, coeffs: np.ndarray, t_points: np.ndarray) -> np.ndarray:
        out = np.empty(t_points.shape, dtype=float)
        for idx, t in enumerate(t_points):
            u = t / self.time_scale
            out[idx] = (
                self._laguerre_sum(coeffs, u)
                * np.exp(self.damping * u)
                / self.time_scale
            )
        return out

    @staticmethod
    def _laguerre_sum(coeffs: np.ndarray, u: float) -> float:
        """Sum ``sum_n coeffs[n] e^{-u/2} L_n(u)`` with a stable recurrence.

        The damped basis functions ``l_n(u) = e^{-u/2} L_n(u)`` are bounded by
        one in magnitude, so the recurrence is carried out directly on them to
        avoid overflowing the (undamped) Laguerre polynomials at large ``u``.
        """
        if u < 0:
            return 0.0
        damp = np.exp(-0.5 * u)
        l_prev = damp  # l_0
        total = coeffs[0] * l_prev
        if len(coeffs) == 1:
            return float(total)
        l_curr = damp * (1.0 - u)  # l_1
        total += coeffs[1] * l_curr
        for n in range(1, len(coeffs) - 1):
            l_next = ((2 * n + 1 - u) * l_curr - n * l_prev) / (n + 1)
            total += coeffs[n + 1] * l_next
            l_prev, l_curr = l_curr, l_next
        return float(total)
