"""Numerical Laplace-transform inversion (Section 4 of the paper).

Two algorithms are provided, matching the paper's implementation:

* :class:`EulerInverter` — the Euler algorithm of Abate & Whitt (1995),
  robust to discontinuous densities (deterministic / uniform firing times).
* :class:`LaguerreInverter` — the (modified) Laguerre algorithm of Abate,
  Choudhury & Whitt (1996), for smooth densities; its s-point grid is
  independent of the requested t-points.

Both expose the same three-step protocol used by the distributed pipeline:

1. ``required_s_points(t_points)`` — which transform evaluations are needed,
2. the caller evaluates ``L(s)`` at those points (possibly remotely),
3. ``invert_values(t_points, {s: L(s)})`` — assemble ``f(t)``.
"""
from .euler import EulerInverter, euler_s_points
from .laguerre import LaguerreInverter, laguerre_s_points
from .inverter import (
    Inverter,
    get_inverter,
    invert_density,
    invert_cdf,
    conjugate_reduced,
    expand_conjugates,
    expand_to_grid,
)

__all__ = [
    "Inverter",
    "EulerInverter",
    "LaguerreInverter",
    "euler_s_points",
    "laguerre_s_points",
    "get_inverter",
    "invert_density",
    "invert_cdf",
    "conjugate_reduced",
    "expand_conjugates",
    "expand_to_grid",
]
