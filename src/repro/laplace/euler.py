"""Euler Laplace-transform inversion (Abate & Whitt, 1995).

The algorithm approximates the Bromwich integral by a trapezoidal rule on a
vertical contour (``s_k = (A + 2 pi i k) / (2 t)``) and accelerates the
resulting alternating series with Euler (binomial) summation.  It tolerates
discontinuities in the target density, which is why the paper uses it for
models containing deterministic or uniform firing-time distributions.

With the default parameters (``n_terms = 21``, ``euler_order = 11``) each
t-point needs ``n_terms + euler_order + 1 = 33`` transform evaluations, which
matches the paper's "165 s-point evaluations" for the 5 t-points of Table 2.
"""
from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np
from scipy.special import comb

from ..utils.validation import check_positive
from .inverter import Inverter, canonical_s

__all__ = ["EulerInverter", "euler_s_points"]


def euler_s_points(
    t: float, *, a: float = 19.1, n_terms: int = 21, euler_order: int = 11
) -> np.ndarray:
    """The s-points required to invert at time ``t``.

    ``s_k = (a + 2 pi i k) / (2 t)`` for ``k = 0 .. n_terms + euler_order``.
    """
    t = check_positive(t, "t")
    k = np.arange(n_terms + euler_order + 1)
    return (a + 2j * np.pi * k) / (2.0 * t)


class EulerInverter(Inverter):
    """Euler-summation Laplace inverter.

    Parameters
    ----------
    a:
        Discretisation parameter; the discretisation error is of order
        ``e^{-a}`` so the default ``19.1`` targets ~5e-9.
    n_terms:
        Number of leading terms of the alternating series summed exactly.
    euler_order:
        Order of the Euler (binomial) acceleration applied to the partial sums.
    """

    name = "euler"

    def __init__(self, a: float = 19.1, n_terms: int = 21, euler_order: int = 11):
        self.a = check_positive(a, "a")
        if n_terms < 1 or euler_order < 0:
            raise ValueError("n_terms must be >= 1 and euler_order >= 0")
        self.n_terms = int(n_terms)
        self.euler_order = int(euler_order)
        # Binomial weights 2^{-m} C(m, j) used to average the partial sums.
        m = self.euler_order
        self._binom_weights = comb(m, np.arange(m + 1)) / 2.0**m

    # ------------------------------------------------------------ protocol
    def points_per_t(self) -> int:
        """Number of transform evaluations needed per t-point."""
        return self.n_terms + self.euler_order + 1

    def required_s_points(self, t_points: Iterable[float]) -> np.ndarray:
        t_points = np.asarray(list(t_points), dtype=float)
        if t_points.size == 0:
            return np.empty(0, dtype=complex)
        pts = [
            euler_s_points(t, a=self.a, n_terms=self.n_terms, euler_order=self.euler_order)
            for t in t_points
        ]
        return np.concatenate(pts)

    def invert_values(
        self, t_points: Iterable[float], values: Mapping[complex, complex]
    ) -> np.ndarray:
        t_points = np.asarray(list(t_points), dtype=float)
        out = np.empty(t_points.shape, dtype=float)
        lookup = {canonical_s(k): complex(v) for k, v in values.items()}
        for idx, t in enumerate(t_points):
            s_pts = euler_s_points(
                t, a=self.a, n_terms=self.n_terms, euler_order=self.euler_order
            )
            try:
                f_vals = np.asarray([lookup[canonical_s(s)] for s in s_pts], dtype=complex)
            except KeyError as exc:  # pragma: no cover - defensive
                raise KeyError(
                    f"missing transform value for s-point {exc.args[0]!r} (t={t})"
                ) from None
            out[idx] = self._invert_single(t, f_vals)
        return out

    # ------------------------------------------------------------ internals
    def _invert_single(self, t: float, f_values: np.ndarray) -> float:
        """Assemble f(t) from the transform evaluated at ``euler_s_points(t)``."""
        t = float(t)
        a, n, m = self.a, self.n_terms, self.euler_order
        real_parts = f_values.real
        # Terms of the alternating series.
        #   term_0 = (e^{a/2} / (2t)) Re F(a / 2t)
        #   term_k = (e^{a/2} / t) (-1)^k Re F((a + 2 pi i k) / 2t),  k >= 1
        prefactor = np.exp(a / 2.0) / t
        signs = (-1.0) ** np.arange(len(f_values))
        terms = prefactor * signs * real_parts
        terms[0] *= 0.5
        partial = np.cumsum(terms)
        # Euler acceleration: binomially weighted average of partial sums
        # s_n .. s_{n+m}.
        window = partial[n : n + m + 1]
        return float(np.dot(self._binom_weights, window))
