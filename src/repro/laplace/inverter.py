"""Common interface shared by the Euler and Laguerre inversion algorithms."""
from __future__ import annotations

import abc
import inspect
from typing import Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "Inverter",
    "get_inverter",
    "invert_density",
    "invert_cdf",
    "conjugate_reduced",
    "expand_conjugates",
    "expand_to_grid",
    "canonical_s",
]


def canonical_s(s: complex, sig: int = 10) -> complex:
    """Round an s-point to ``sig`` significant digits (per component scale).

    Different code paths can produce the *same* mathematical s-point with
    last-bit floating-point differences (e.g. a contour point and the
    conjugate of its mirror image).  All dictionary lookups keyed by s-points
    — inverter value maps, the distributed result cache, checkpoint files —
    go through this canonicalisation so those representations collide as
    intended.  Grid points of the supported inversion algorithms are separated
    by far more than ``10^-sig`` of their magnitude, so no distinct points are
    merged.
    """
    s = complex(s)
    magnitude = max(abs(s.real), abs(s.imag))
    if magnitude == 0.0 or not np.isfinite(magnitude):
        return s
    scale = 10.0 ** (sig - int(np.ceil(np.log10(magnitude))))
    return complex(round(s.real * scale) / scale, round(s.imag * scale) / scale)


class Inverter(abc.ABC):
    """Abstract numerical Laplace-transform inverter.

    The protocol mirrors the structure of the paper's distributed pipeline:
    the master asks the inverter for the s-points it will need
    (:meth:`required_s_points`), farms those evaluations out to workers, and
    finally calls :meth:`invert_values` with the gathered results.
    """

    #: short identifier ("euler" / "laguerre") used in configuration and caches
    name: str = "abstract"

    @abc.abstractmethod
    def required_s_points(self, t_points: Iterable[float]) -> np.ndarray:
        """Complex s-points at which the transform must be evaluated."""

    @abc.abstractmethod
    def invert_values(
        self, t_points: Iterable[float], values: Mapping[complex, complex]
    ) -> np.ndarray:
        """Assemble ``f(t)`` for each ``t`` from pre-computed transform values."""

    # ------------------------------------------------------------ helpers
    def invert(
        self, transform: Callable[[np.ndarray], np.ndarray], t_points: Iterable[float]
    ) -> np.ndarray:
        """Convenience: evaluate ``transform`` directly and invert.

        ``transform`` must be vectorised over an ndarray of complex s.
        """
        t_points = np.asarray(list(t_points), dtype=float)
        s_points = self.required_s_points(t_points)
        values = np.asarray(transform(s_points), dtype=complex)
        mapping = {complex(s): complex(v) for s, v in zip(s_points, values)}
        return self.invert_values(t_points, mapping)

    def invert_cdf(
        self, transform: Callable[[np.ndarray], np.ndarray], t_points: Iterable[float]
    ) -> np.ndarray:
        """Invert the *cumulative* distribution via ``L(s) / s`` (paper §5.3.1)."""
        return self.invert(lambda s: np.asarray(transform(s), dtype=complex) / s, t_points)


def get_inverter(method: str = "euler", **options) -> Inverter:
    """Factory returning an inverter by name (``"euler"`` or ``"laguerre"``).

    Keyword options are checked against the selected inverter's constructor
    signature, so a typo (``eular_terms=...``) raises a :class:`ValueError`
    naming the bad option and the valid set instead of being dropped or
    surfacing as an opaque ``TypeError`` deep in the pipeline.
    """
    from .euler import EulerInverter
    from .laguerre import LaguerreInverter

    factories = {"euler": EulerInverter, "laguerre": LaguerreInverter}
    method = str(method).lower()
    cls = factories.get(method)
    if cls is None:
        raise ValueError(
            f"unknown inversion method {method!r}; expected 'euler' or 'laguerre'"
        )
    valid = [name for name in inspect.signature(cls.__init__).parameters if name != "self"]
    unknown = sorted(set(options) - set(valid))
    if unknown:
        raise ValueError(
            f"unknown option{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(o) for o in unknown)} for the {method!r} inverter; "
            f"valid options: {', '.join(valid)}"
        )
    return cls(**options)


def invert_density(
    transform: Callable[[np.ndarray], np.ndarray],
    t_points: Iterable[float],
    method: str = "euler",
    **options,
) -> np.ndarray:
    """One-shot density inversion ``f(t) = L^{-1}[F](t)``."""
    return get_inverter(method, **options).invert(transform, t_points)


def invert_cdf(
    transform: Callable[[np.ndarray], np.ndarray],
    t_points: Iterable[float],
    method: str = "euler",
    **options,
) -> np.ndarray:
    """One-shot CDF inversion via ``L(s)/s``."""
    return get_inverter(method, **options).invert_cdf(transform, t_points)


# --------------------------------------------------------------------------
# Conjugate-pair reduction.
#
# The transform of a real function satisfies L(conj(s)) = conj(L(s)), so the
# master only needs to evaluate one member of each conjugate pair.  These two
# helpers convert between the full s-point set and the reduced one; they are
# used by the distributed work queue to almost halve the number of tasks for
# the Laguerre grid (the Euler grid already lies in the upper half plane).
# --------------------------------------------------------------------------

def conjugate_reduced(s_points: np.ndarray) -> np.ndarray:
    """Return a set of s-points with negative-imaginary members folded away."""
    s_points = np.asarray(s_points, dtype=complex)
    folded = np.where(s_points.imag < 0, np.conj(s_points), s_points)
    # Deduplicate (up to canonical rounding) preserving first-appearance order.
    seen: dict[complex, complex] = {}
    for s in folded:
        seen.setdefault(canonical_s(s), complex(s))
    return np.asarray(list(seen.values()), dtype=complex)


def expand_conjugates(values: Mapping[complex, complex]) -> dict[complex, complex]:
    """Extend a mapping of transform values to the conjugate s-points."""
    expanded = dict(values)
    for s, v in list(values.items()):
        expanded.setdefault(complex(np.conj(complex(s))), complex(np.conj(complex(v))))
    return expanded


def expand_to_grid(
    s_points, canonical_values: Mapping[complex, complex]
) -> dict[complex, complex]:
    """Key canonically cached transform values back onto an exact s-grid.

    ``canonical_values`` maps :func:`canonical_s` keys (the upper-half-plane
    member of each folded conjugate pair) to transform values; a grid point
    absent from it is recovered as the conjugate of its mirror image.  The
    result is keyed by the *exact* grid points, so downstream arithmetic
    (e.g. the CDF's ``L(s)/s``) divides by the same floats on every
    evaluation path — the property the engine-parity tests depend on.
    """
    out: dict[complex, complex] = {}
    for s in s_points:
        s = complex(s)
        value = canonical_values.get(canonical_s(s))
        if value is None:
            value = complex(np.conj(canonical_values[canonical_s(np.conj(s))]))
        out[s] = value
    return out
