"""Command-line interface: analyse a DNAmaca model without writing Python.

The paper's tool chain is driven by a textual model specification; this CLI
provides the same workflow::

    semimarkov info model.dnamaca
    semimarkov passage model.dnamaca --source "p1 == 18" --target "p2 >= 18" \
        --t-points 10 20 30 40 50 --cdf --quantile 0.99
    semimarkov transient model.dnamaca --source "p1 == 18" --target "p2 >= 5" \
        --t-points 5 10 20 50
    semimarkov simulate model.dnamaca --target "p2 >= 18" --replications 2000

Source and target sets are marking predicates written in the same expression
language as the specification's ``\\condition`` clauses (place names,
constants, comparisons, ``&&`` / ``||``).
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .core.jobs import PassageTimeJob
from .distributed import CheckpointStore, DistributedPipeline, MultiprocessingBackend, SerialBackend
from .dnamaca import load_model, parse_model
from .dnamaca.expressions import SafeExpression
from .petri import build_kernel, explore
from .simulation import PetriSimulator, empirical_cdf
from .smp import PassageTimeOptions, source_weights

__all__ = ["main", "build_parser"]


def _predicate_from_expression(source: str, constants: dict[str, float]):
    """Compile a marking predicate from a condition-style expression."""
    expression = SafeExpression(source)

    def predicate(view) -> bool:
        env = dict(constants)
        env.update(view.as_dict())
        return bool(expression.evaluate(env))

    return predicate


def _load(path: str, overrides: list[str] | None):
    text = Path(path).read_text()
    spec = parse_model(text, name=Path(path).stem)
    override_map: dict[str, float] = {}
    for item in overrides or []:
        if "=" not in item:
            raise SystemExit(f"--set expects NAME=VALUE, got {item!r}")
        name, value = item.split("=", 1)
        override_map[name.strip()] = float(value)
    net = load_model(text, name=Path(path).stem, overrides=override_map or None)
    constants = dict(spec.constants)
    constants.update(override_map)
    return net, constants


def _state_sets(graph, constants, source_expr: str, target_expr: str):
    source_pred = _predicate_from_expression(source_expr, constants)
    target_pred = _predicate_from_expression(target_expr, constants)
    sources = graph.states_where(source_pred)
    targets = graph.states_where(target_pred)
    if not sources:
        raise SystemExit(f"no reachable marking satisfies the source predicate {source_expr!r}")
    if not targets:
        raise SystemExit(f"no reachable marking satisfies the target predicate {target_expr!r}")
    return sources, targets


def _backend(args):
    if args.workers and args.workers > 1:
        return MultiprocessingBackend(processes=args.workers, chunk_size=4)
    return SerialBackend(record_timings=True)


def _emit(rows, header, args):
    if args.json:
        print(json.dumps(rows, indent=2))
        return
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(
            (f"{v:.6g}" if isinstance(v, float) else str(v)).rjust(w)
            for v, w in zip(row, widths)
        ))


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def _cmd_info(args) -> int:
    net, constants = _load(args.model, args.set)
    graph = explore(net, max_states=args.max_states)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    usage = graph.transition_usage()
    print(f"model          : {net.name}")
    print(f"constants      : {constants}")
    print(f"places         : {', '.join(net.places)}")
    print(f"transitions    : {', '.join(t.name for t in net.transitions)}")
    print(f"reachable states: {graph.n_states}{' (truncated)' if graph.truncated else ''}")
    print(f"kernel         : {kernel.n_transitions} transitions, "
          f"{kernel.n_distributions} distinct sojourn distributions")
    print(f"deadlocks      : {len(graph.deadlocks)}")
    print("edges per net transition:")
    for name, count in sorted(usage.items()):
        print(f"  {name:>12}: {count}")
    return 0


def _cmd_passage(args) -> int:
    net, constants = _load(args.model, args.set)
    graph = explore(net, max_states=args.max_states)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    sources, targets = _state_sets(graph, constants, args.source, args.target)

    job = PassageTimeJob(
        kernel=kernel,
        alpha=source_weights(kernel, sources),
        targets=targets,
        options=PassageTimeOptions(epsilon=args.epsilon),
        solver=args.solver,
    )
    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None
    pipeline = DistributedPipeline(
        job, inversion=args.inversion, backend=_backend(args), checkpoint=checkpoint
    )

    t_points = np.asarray(args.t_points, dtype=float)
    density = pipeline.density(t_points)
    rows = [[float(t), float(f)] for t, f in zip(t_points, density)]
    header = ["t", "density"]
    if args.cdf:
        cdf = pipeline.cdf(t_points)
        header.append("cdf")
        for row, value in zip(rows, cdf):
            row.append(float(value))
    _emit(rows, header, args)

    if args.quantile is not None:
        from .core import PassageTimeSolver

        solver = PassageTimeSolver(
            kernel, sources=sources, targets=targets, method=args.solver,
            inversion=args.inversion,
        )
        lo, hi = min(t_points), max(t_points) * 10
        value = solver.quantile(args.quantile, lo, hi)
        print(f"quantile: P(T <= {value:.6g}) = {args.quantile}")
    stats = pipeline.statistics_summary()
    print(f"# s-points computed: {stats['s_points_computed']} "
          f"(cache: {stats['s_points_from_cache']}), "
          f"evaluation {stats['evaluation_seconds']:.2f}s via {stats['backend']}",
          file=sys.stderr)
    return 0


def _cmd_transient(args) -> int:
    net, constants = _load(args.model, args.set)
    graph = explore(net, max_states=args.max_states)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    sources, targets = _state_sets(graph, constants, args.source, args.target)

    from .core import TransientSolver

    solver = TransientSolver(
        kernel, sources=sources, targets=targets,
        method=args.solver, inversion=args.inversion,
        options=PassageTimeOptions(epsilon=args.epsilon),
    )
    t_points = np.asarray(args.t_points, dtype=float)
    result = solver.solve(t_points)
    rows = [[float(t), float(p)] for t, p in zip(result.t_points, result.probability)]
    _emit(rows, ["t", "probability"], args)
    print(f"steady-state value: {result.steady_state:.6g}")
    return 0


def _cmd_simulate(args) -> int:
    net, constants = _load(args.model, args.set)
    target = _predicate_from_expression(args.target, constants)
    simulator = PetriSimulator(net)
    samples = simulator.sample_passage_times(
        target, n_samples=args.replications, rng=args.seed
    )
    quantiles = [0.05, 0.25, 0.5, 0.75, 0.95, 0.99]
    rows = [[q, float(np.quantile(samples, q))] for q in quantiles]
    _emit(rows, ["quantile", "t"], args)
    print(f"mean: {samples.mean():.6g}   std: {samples.std(ddof=1):.6g}   "
          f"replications: {len(samples)}")
    if args.t_points:
        cdf = empirical_cdf(samples, args.t_points)
        _emit([[float(t), float(p)] for t, p in zip(args.t_points, cdf)],
              ["t", "P(T<=t)"], args)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="semimarkov",
        description="Passage-time and transient analysis of DNAmaca semi-Markov models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("model", help="path to the DNAmaca specification file")
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="override a declared constant (repeatable)")
        p.add_argument("--max-states", type=int, default=None,
                       help="cap on the explored state-space size")
        p.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    info = sub.add_parser("info", help="show model structure and state-space statistics")
    add_common(info)
    info.set_defaults(handler=_cmd_info)

    def add_measure_options(p):
        p.add_argument("--source", required=True, help="source-marking predicate expression")
        p.add_argument("--target", required=True, help="target-marking predicate expression")
        p.add_argument("--t-points", type=float, nargs="+", required=True,
                       help="time points to evaluate")
        p.add_argument("--solver", choices=["iterative", "direct"], default="iterative")
        p.add_argument("--inversion", choices=["euler", "laguerre"], default="euler")
        p.add_argument("--epsilon", type=float, default=1e-8,
                       help="truncation tolerance of the iterative sum")

    passage = sub.add_parser("passage", help="first-passage-time density / CDF / quantile")
    add_common(passage)
    add_measure_options(passage)
    passage.add_argument("--cdf", action="store_true", help="also invert the CDF")
    passage.add_argument("--quantile", type=float, default=None,
                         help="extract the given passage-time quantile")
    passage.add_argument("--workers", type=int, default=1,
                         help="worker processes for the s-point evaluations")
    passage.add_argument("--checkpoint", default=None,
                         help="directory for on-disk checkpointing of s-point results")
    passage.set_defaults(handler=_cmd_passage)

    transient = sub.add_parser("transient", help="transient state distribution")
    add_common(transient)
    add_measure_options(transient)
    transient.set_defaults(handler=_cmd_transient)

    simulate = sub.add_parser("simulate", help="Monte-Carlo passage-time estimation")
    add_common(simulate)
    simulate.add_argument("--target", required=True, help="target-marking predicate expression")
    simulate.add_argument("--replications", type=int, default=2000)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--t-points", type=float, nargs="*", default=None,
                          help="optionally report the empirical CDF at these times")
    simulate.set_defaults(handler=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
