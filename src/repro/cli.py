"""Command-line interface: analyse a DNAmaca model without writing Python.

The paper's tool chain is driven by a textual model specification; this CLI
provides the same workflow::

    semimarkov info model.dnamaca
    semimarkov passage model.dnamaca --source "p1 == 18" --target "p2 >= 18" \
        --t-points 10 20 30 40 50 --cdf --quantile 0.99
    semimarkov transient model.dnamaca --source "p1 == 18" --target "p2 >= 5" \
        --t-points 5 10 20 50
    semimarkov simulate model.dnamaca --target "p2 >= 18" --replications 2000

Long-lived serving (models built once, transform values cached and coalesced
across queries — see :mod:`repro.service`)::

    semimarkov serve --port 8400 --checkpoint /var/lib/semimarkov
    semimarkov query register model.dnamaca
    semimarkov query passage model.dnamaca --source "p1 == 18" \
        --target "p2 >= 18" --t-points 10 20 50 --cdf
    semimarkov query stats

Every sub-command is a thin layer over the public analysis API
(:mod:`repro.api`): the model file becomes a :class:`~repro.api.Model`, the
requested measure becomes a lazy query, and the command's flags select the
execution engine — in-process for ``passage``/``transient``, the
checkpointing distributed pipeline for ``--workers``/``--checkpoint``, and
the remote engine (a running ``semimarkov serve``) for ``query ...``.

Source and target sets are marking predicates written in the same expression
language as the specification's ``\\condition`` clauses (place names,
constants, comparisons, ``&&`` / ``||``).
"""
from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path

from .api import ApiError, DistributedEngine, Model
from .dnamaca.expressions import ExpressionError, parse_overrides

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------


def _overrides(args) -> dict[str, float]:
    """Parse repeatable ``--set NAME=VALUE`` flags via the shared helper."""
    try:
        return parse_overrides(getattr(args, "set", None))
    except ExpressionError as exc:
        raise SystemExit(str(exc)) from None


def _model(args) -> Model:
    """The (lazy) model referenced by the positional MODEL argument."""
    try:
        return Model.from_file(
            args.model, overrides=_overrides(args), max_states=args.max_states
        )
    except ApiError as exc:
        raise SystemExit(str(exc)) from None


def _query_model(args) -> Model:
    """Interpret a query's MODEL argument as a spec path or a digest."""
    overrides = _overrides(args)
    if Path(args.model).exists():
        return Model.from_file(args.model, overrides=overrides)
    if overrides:
        raise SystemExit(
            "--set needs the specification text; pass a spec file path, not a digest"
        )
    return Model.from_digest(args.model)


def _run(query, engine, **engine_options):
    """Execute a query, converting API errors into clean exit messages."""
    try:
        return query.run(engine, **engine_options)
    except ApiError as exc:
        raise SystemExit(str(exc)) from None


def _cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _emit(rows, header, args) -> None:
    """Print rows as an aligned table, JSON, or CSV (``None`` -> empty field).

    The CSV and JSON forms are machine-readable and keep full float
    precision; only the aligned table rounds for display.
    """
    if getattr(args, "csv", False):
        writer = csv.writer(sys.stdout, lineterminator="\n")
        writer.writerow(header)
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
        return
    if getattr(args, "json", False):
        print(json.dumps(rows, indent=2))
        return
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(_cell(v).rjust(w) for v, w in zip(row, widths)))


def _passage_rows(result) -> tuple[list[list], list[str]]:
    """Rows/header from a PassageTimeResult, dropping all-``None`` columns."""
    table = result.as_table()
    header = ["t", "density", "cdf"]
    keep = [0] + [i for i in (1, 2) if any(row[i] is not None for row in table)]
    return [[row[i] for i in keep] for row in table], [header[i] for i in keep]


def _measure_query(model: Model, args, kind: str):
    """Configure a passage/transient query from the shared measure flags."""
    try:
        if kind == "passage":
            query = model.passage(args.source, args.target).density(args.t_points)
            if args.cdf:
                query = query.cdf()
            if getattr(args, "quantile", None) is not None:
                query = query.quantile(args.quantile)
        else:
            query = model.transient(args.source, args.target).probability(args.t_points)
        return (
            query.with_solver(args.solver)
            .with_inversion(args.inversion)
            .with_epsilon(args.epsilon)
        )
    except ApiError as exc:
        raise SystemExit(str(exc)) from None


def _print_quantiles(result) -> None:
    for q, t in sorted(result.quantiles.items()):
        print(f"quantile: P(T <= {t:.6g}) = {q}")


def _start_trace(args) -> str | None:
    """Enable the process tracer when ``--trace OUT.json`` was given."""
    path = getattr(args, "trace", None)
    if path:
        from .obs import get_tracer

        get_tracer().enable()
    return path


def _finish_trace(path: str | None) -> None:
    """Write the Chrome/Perfetto trace-event file and reset the tracer."""
    if not path:
        return
    from .obs import get_tracer

    tracer = get_tracer()
    count = tracer.write_chrome_trace(path)
    tracer.disable()
    tracer.clear()
    print(f"# trace: {count} span(s) written to {path} "
          "(load in https://ui.perfetto.dev or chrome://tracing)",
          file=sys.stderr)


def _progress_reporter(args):
    """A stderr progress line for ``--progress``, else ``None``."""
    if not getattr(args, "progress", False):
        return None
    from .obs import ProgressReporter, stderr_renderer

    return ProgressReporter().subscribe(stderr_renderer())


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def _cmd_info(args) -> int:
    model = _model(args)
    try:
        entry = model.entry
    except ApiError as exc:
        raise SystemExit(str(exc)) from None
    graph, kernel, net = entry.graph, entry.kernel, entry.net
    usage = graph.transition_usage()
    matrix = graph.marking_array()
    print(f"model          : {net.name}")
    print(f"constants      : {entry.constants}")
    print(f"places         : {', '.join(net.places)}")
    print(f"transitions    : {', '.join(t.name for t in net.transitions)}")
    print(f"reachable states: {graph.n_states}{' (truncated)' if graph.truncated else ''}")
    print(f"state space    : {matrix.shape[0]} x {matrix.shape[1]} marking matrix "
          f"({matrix.nbytes / 1e6:.1f} MB), {graph.n_edges} edges (SoA)")
    print(f"kernel         : {kernel.n_transitions} transitions, "
          f"{kernel.n_distributions} distinct sojourn distributions")
    print(f"deadlocks      : {len(graph.deadlocks)}")
    print("edges per net transition:")
    for name, count in sorted(usage.items()):
        print(f"  {name:>12}: {count}")
    return 0


def _cmd_passage(args) -> int:
    model = _model(args)
    query = _measure_query(model, args, "passage")
    engine = DistributedEngine(
        workers=args.workers, checkpoint=args.checkpoint,
        progress=_progress_reporter(args),
    )
    trace_path = _start_trace(args)
    try:
        result = _run(query, engine)
    finally:
        if engine.progress is not None:
            engine.progress.finish()
        _finish_trace(trace_path)

    rows, header = _passage_rows(result)
    _emit(rows, header, args)
    _print_quantiles(result)
    stats = result.statistics
    print(f"# s-points computed: {stats.get('s_points_computed', 0)} "
          f"(cache: {stats.get('s_points_from_cache', 0)}), "
          f"evaluation {stats.get('evaluation_seconds', 0.0):.2f}s "
          f"via {stats.get('backend', 'serial')}",
          file=sys.stderr)
    _print_engine_stats(stats)
    return 0


def _cmd_transient(args) -> int:
    model = _model(args)
    query = _measure_query(model, args, "transient")
    trace_path = _start_trace(args)
    try:
        result = _run(query, "inline")
    finally:
        _finish_trace(trace_path)
    _emit(result.as_table(), ["t", "probability"], args)
    print(f"steady-state value: {result.steady_state:.6g}")
    return 0


def _cmd_simulate(args) -> int:
    model = _model(args)
    try:
        query = model.simulate(
            args.target,
            replications=args.replications,
            seed=args.seed,
            t_points=args.t_points or None,
        )
    except ApiError as exc:
        raise SystemExit(str(exc)) from None
    result = _run(query, "inline")
    _emit(result.as_table(), ["quantile", "t"], args)
    print(f"mean: {result.mean():.6g}   std: {result.std():.6g}   "
          f"replications: {result.n_replications}")
    if result.t_points is not None:
        _emit([[float(t), float(p)] for t, p in zip(result.t_points, result.cdf)],
              ["t", "P(T<=t)"], args)
    return 0


# ---------------------------------------------------------------------------
# Serving
# ---------------------------------------------------------------------------


def _cmd_serve(args) -> int:
    import logging

    from .service import AnalysisService, create_server

    # One structured line per request on the repro.service logger; the
    # handler writes to stderr so stdout stays clean for the banner.
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(message)s"))
    service_logger = logging.getLogger("repro.service")
    service_logger.addHandler(handler)
    service_logger.setLevel(getattr(logging, args.log_level.upper()))

    from .jobs import TenantQuotas

    service = AnalysisService(
        checkpoint_dir=args.checkpoint,
        cache_points=args.cache_points,
        default_max_states=args.max_states,
        workers=args.workers,
        quotas=TenantQuotas(
            max_active_jobs=args.max_active_jobs,
            max_models=args.max_models,
            rate_per_second=args.rate,
            burst=args.burst,
        ),
        job_store=args.job_store,
        job_max_attempts=args.job_max_attempts,
    )
    overrides = _overrides(args)
    for path in args.preload or []:
        info = service.register_model(
            Path(path).read_text(), name=Path(path).stem,
            overrides=overrides or None,
        )
        print(f"preloaded {path}: model {info['model']} "
              f"({info['states']} states, {info['build_seconds']:.2f}s)")
    server = create_server(service, host=args.host, port=args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    print(f"semimarkov analysis server listening on http://{host}:{port} "
          f"(checkpoint: {args.checkpoint or 'none'}, "
          f"jobs: {service.jobs.backend_name})", flush=True)

    # Graceful drain on SIGTERM/SIGINT: stop admitting mutations (503 +
    # Retry-After), park the in-flight job at an s-block boundary with its
    # completed blocks checkpointed, then stop the accept loop.  shutdown()
    # must not run on the signal-handler frame (it joins serve_forever), so
    # the drain runs on a helper thread; a second signal force-exits.
    import signal
    import threading

    drained = threading.Event()

    def _drain_and_stop() -> None:
        service.drain()
        server.shutdown()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        if drained.is_set():  # second signal: operator really means it
            raise SystemExit(1)
        drained.set()
        print(f"received {signal.Signals(signum).name}; draining",
              file=sys.stderr, flush=True)
        threading.Thread(
            target=_drain_and_stop, name="repro-drain", daemon=True
        ).start()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - handler converts SIGINT
        print("shutting down", file=sys.stderr)
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        server.server_close()
        service.close()
        print("drained; all job state persisted", file=sys.stderr, flush=True)
    return 0


def _print_query_stats(statistics: dict) -> None:
    print(
        f"# s-points: {statistics.get('s_points_required', 0)} required, "
        f"{statistics.get('s_points_computed', 0)} computed, "
        f"{statistics.get('s_points_from_memory', 0)} memory, "
        f"{statistics.get('s_points_from_disk', 0)} disk, "
        f"{statistics.get('s_points_coalesced', 0)} coalesced",
        file=sys.stderr,
    )
    _print_engine_stats(statistics)


def _print_engine_stats(statistics: dict) -> None:
    """One stderr line naming the evaluator engine and per-block timings."""
    engine = statistics.get("evaluator_engine")
    if not engine:
        return
    blocks = statistics.get("solve_blocks") or []
    if blocks:
        seconds = sum(b.get("seconds", 0.0) for b in blocks)
        timings = ", ".join(
            f"{b.get('points', '?')}pt/{b.get('seconds', 0.0):.3f}s" for b in blocks
        )
        print(
            f"# evaluator: {engine} engine, {len(blocks)} block(s) "
            f"in {seconds:.3f}s [{timings}]",
            file=sys.stderr,
        )
        unconverged = sum(b.get("unconverged", 0) for b in blocks)
        if unconverged:
            print(
                f"# WARNING: {unconverged} s-point(s) returned truncated "
                "(iteration cap hit, no direct fallback on this kernel size)",
                file=sys.stderr,
            )
    else:
        print(f"# evaluator: {engine} engine", file=sys.stderr)
    workers = statistics.get("workers") or {}
    if workers:
        detail = ", ".join(
            f"{label}: {entry.get('blocks', 0)} blk/"
            f"{entry.get('points', 0)} pt/"
            f"{entry.get('busy_seconds', 0.0):.3f}s"
            for label, entry in sorted(workers.items())
        )
        print(
            f"# workers: {len(workers)} process(es) [{detail}]",
            file=sys.stderr,
        )


def _client(args):
    from .service import ServiceClient

    return ServiceClient(args.url, tenant=getattr(args, "tenant", None))


def _cmd_query_register(args) -> int:
    from .service import ServiceClientError

    override_map = _overrides(args)
    try:
        info = _client(args).register_model(
            Path(args.model).read_text(),
            name=args.name or Path(args.model).stem,
            overrides=override_map or None,
            max_states=args.max_states,
        )
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(f"model    : {info['model']} ({'built' if info['created'] else 'cached'})")
        print(f"name     : {info['name']}")
        print(f"states   : {info['states']}")
        print(f"build    : {info['build_seconds']:.3f}s")
    return 0


def _cmd_query_passage(args) -> int:
    model = _query_model(args)
    query = _measure_query(model, args, "passage")
    result = _run(query, "remote", url=args.url, tenant=args.tenant)
    rows, header = _passage_rows(result)
    _emit(rows, header, args)
    _print_quantiles(result)
    _print_query_stats(result.statistics)
    return 0


def _cmd_query_transient(args) -> int:
    model = _query_model(args)
    query = _measure_query(model, args, "transient")
    result = _run(query, "remote", url=args.url, tenant=args.tenant)
    _emit(result.as_table(), ["t", "probability"], args)
    if result.steady_state is not None:
        print(f"steady-state value: {result.steady_state:.6g}")
    _print_query_stats(result.statistics)
    return 0


def _cmd_query_stats(args) -> int:
    from .service import ServiceClientError

    try:
        stats = _client(args).stats()
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    print(json.dumps(stats, indent=2))
    return 0


# ---------------------------------------------------------------------------
# Async jobs
# ---------------------------------------------------------------------------


def _print_job(view: dict, args) -> None:
    if getattr(args, "json", False):
        print(json.dumps(view, indent=2))
        return
    progress = view.get("progress") or {}
    done = progress.get("points_done", 0)
    total = progress.get("points_total", 0)
    pct = f"{100.0 * done / total:.0f}%" if total else "-"
    line = f"state    : {view['state']}"
    if view.get("error"):
        line += f" ({view['error']})"
    print(f"job      : {view['job']} ({view['kind']})")
    print(line)
    print(f"model    : {view.get('model')}")
    print(f"tenant   : {view.get('tenant')}")
    print(f"progress : {done}/{total} s-points ({pct}), "
          f"{progress.get('blocks_done', 0)}/{progress.get('blocks_total', 0)} blocks, "
          f"attempt {view.get('attempts', 0)}")


def _print_job_result(view: dict, args) -> None:
    """Emit a finished job's measure table (the sync commands' format)."""
    result = view.get("result")
    if not isinstance(result, dict):
        return
    t_points = result.get("t_points") or []
    if result.get("measure") == "passage":
        density = result.get("density") or []
        cdf = result.get("cdf")
        if cdf is not None:
            rows = [[t, d, F] for t, d, F in zip(t_points, density, cdf)]
            _emit(rows, ["t", "density", "cdf"], args)
        else:
            _emit([[t, d] for t, d in zip(t_points, density)], ["t", "density"], args)
        quantile = result.get("quantile")
        if quantile:
            print(f"quantile: P(T <= {quantile['t']:.6g}) = {quantile['q']}")
    else:
        rows = [[t, p] for t, p in zip(t_points, result.get("probability") or [])]
        _emit(rows, ["t", "probability"], args)
        if result.get("steady_state") is not None:
            print(f"steady-state value: {result['steady_state']:.6g}")


def _cmd_query_jobs_submit(args) -> int:
    from .service import ServiceClientError

    kwargs: dict = dict(
        source=args.source, target=args.target, t_points=args.t_points,
        solver=args.solver, inversion=args.inversion, epsilon=args.epsilon,
    )
    overrides = _overrides(args)
    if Path(args.model).exists():
        kwargs["spec"] = Path(args.model).read_text()
        if overrides:
            kwargs["overrides"] = overrides
    else:
        if overrides:
            raise SystemExit(
                "--set needs the specification text; pass a spec file path, "
                "not a digest"
            )
        kwargs["model"] = args.model
    if getattr(args, "max_states", None) is not None:
        kwargs["max_states"] = args.max_states
    if args.kind == "passage":
        kwargs["cdf"] = args.cdf
        if args.quantile is not None:
            kwargs["quantile"] = args.quantile
    try:
        view = _client(args).submit(args.kind, **kwargs)
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps(view, indent=2))
    else:
        print(f"job {view['job']} {view['state']} "
              f"(follow with: semimarkov query jobs wait {view['job']})")
    return 0


def _cmd_query_jobs_status(args) -> int:
    from .service import ServiceClientError

    try:
        view = _client(args).job(args.job_id)
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    _print_job(view, args)
    return 0


def _cmd_query_jobs_wait(args) -> int:
    from .service import ServiceClientError

    client = _client(args)
    try:
        view = client.wait(args.job_id, timeout=args.timeout, interval=args.interval)
    except TimeoutError as exc:
        raise SystemExit(str(exc)) from None
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps(view, indent=2))
    else:
        _print_job(view, args)
        _print_job_result(view, args)
    return 0 if view.get("state") == "done" else 1


def _cmd_query_jobs_cancel(args) -> int:
    from .service import ServiceClientError

    try:
        view = _client(args).cancel(args.job_id)
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    _print_job(view, args)
    return 0


def _cmd_query_jobs_list(args) -> int:
    from .service import ServiceClientError

    try:
        listing = _client(args).jobs()
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    rows = []
    for view in listing.get("jobs", []):
        progress = view.get("progress") or {}
        total = progress.get("points_total", 0)
        done = progress.get("points_done", 0)
        rows.append([
            view["job"], view["kind"], view["model"], view["state"],
            f"{done}/{total}" if total else "",
        ])
    _emit(rows, ["job", "kind", "model", "state", "points"], args)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="semimarkov",
        description="Passage-time and transient analysis of DNAmaca semi-Markov models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("model", help="path to the DNAmaca specification file")
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="override a declared constant (repeatable)")
        p.add_argument("--max-states", type=int, default=None,
                       help="cap on the explored state-space size")
        p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
        p.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    info = sub.add_parser("info", help="show model structure and state-space statistics")
    add_common(info)
    info.set_defaults(handler=_cmd_info)

    def add_measure_options(p):
        p.add_argument("--source", required=True, help="source-marking predicate expression")
        p.add_argument("--target", required=True, help="target-marking predicate expression")
        p.add_argument("--t-points", type=float, nargs="+", required=True,
                       help="time points to evaluate")
        p.add_argument("--solver", choices=["iterative", "direct"], default="iterative")
        p.add_argument("--inversion", choices=["euler", "laguerre"], default="euler")
        p.add_argument("--epsilon", type=float, default=1e-8,
                       help="truncation tolerance of the iterative sum")

    passage = sub.add_parser("passage", help="first-passage-time density / CDF / quantile")
    add_common(passage)
    add_measure_options(passage)
    passage.add_argument("--cdf", action="store_true", help="also invert the CDF")
    passage.add_argument("--quantile", type=float, default=None,
                         help="extract the given passage-time quantile")
    passage.add_argument("--workers", type=int, default=1,
                         help="worker processes for the s-point evaluations")
    passage.add_argument("--checkpoint", default=None,
                         help="directory for on-disk checkpointing of s-point results")
    passage.add_argument("--trace", metavar="FILE", default=None,
                         help="write a Chrome/Perfetto trace-event JSON file "
                              "covering explore, kernel build, plane export, "
                              "per-worker s-block solves and inversion")
    passage.add_argument("--progress", action="store_true",
                         help="render a live blocks/points/ETA line on stderr")
    passage.set_defaults(handler=_cmd_passage)

    transient = sub.add_parser("transient", help="transient state distribution")
    add_common(transient)
    add_measure_options(transient)
    transient.add_argument("--trace", metavar="FILE", default=None,
                           help="write a Chrome/Perfetto trace-event JSON file")
    transient.set_defaults(handler=_cmd_transient)

    simulate = sub.add_parser("simulate", help="Monte-Carlo passage-time estimation")
    add_common(simulate)
    simulate.add_argument("--target", required=True, help="target-marking predicate expression")
    simulate.add_argument("--replications", type=int, default=2000)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--t-points", type=float, nargs="*", default=None,
                          help="optionally report the empirical CDF at these times")
    simulate.set_defaults(handler=_cmd_simulate)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived analysis server (model registry, coalescing "
             "scheduler, tiered result cache, HTTP JSON API)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8400,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--checkpoint", default=None,
                       help="directory for the on-disk result-cache tier")
    serve.add_argument("--cache-points", type=int, default=500_000,
                       help="in-memory cache bound (total s-points)")
    serve.add_argument("--max-states", type=int, default=None,
                       help="default state-space cap for registered models")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes sharing the kernel plane; "
                            "1 evaluates in-process")
    serve.add_argument("--preload", action="append", metavar="MODEL",
                       help="register this spec file at startup (repeatable)")
    serve.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="constant overrides applied to preloaded models")
    serve.add_argument("--job-store", default="auto",
                       choices=["auto", "memory", "sqlite"],
                       help="async-job record backend: sqlite persists under "
                            "--checkpoint; auto picks sqlite when a "
                            "checkpoint directory is configured")
    serve.add_argument("--max-active-jobs", type=int, default=64,
                       help="per-tenant cap on queued+running async jobs")
    serve.add_argument("--job-max-attempts", type=int, default=5,
                       help="executions a job may burn before restart "
                            "recovery fails it as a crash loop instead of "
                            "re-queueing it")
    serve.add_argument("--max-models", type=int, default=None,
                       help="per-tenant cap on registered model digests")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant sustained requests/second "
                            "(token-bucket; default unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="token-bucket burst size (default 2x rate)")
    serve.add_argument("--verbose", action="store_true",
                       help="also emit the stdlib per-request log lines")
    serve.add_argument("--log-level", default="info",
                       choices=["debug", "info", "warning", "error"],
                       help="threshold for the structured request log on "
                            "stderr (default: info)")
    serve.set_defaults(handler=_cmd_serve)

    query = sub.add_parser("query", help="query a running analysis server")
    query.add_argument("--url", default="http://127.0.0.1:8400",
                       help="base URL of the server")
    query.add_argument("--tenant", default=None,
                       help="tenant name sent as the X-Repro-Tenant header")
    qsub = query.add_subparsers(dest="query_command", required=True)

    q_register = qsub.add_parser("register", help="register a model spec with the server")
    q_register.add_argument("model", help="path to the DNAmaca specification file")
    q_register.add_argument("--name", default=None)
    q_register.add_argument("--set", action="append", metavar="NAME=VALUE")
    q_register.add_argument("--max-states", type=int, default=None)
    q_register.add_argument("--json", action="store_true")
    q_register.set_defaults(handler=_cmd_query_register)

    def add_query_measure(p):
        p.add_argument("model", help="model digest, or path to a spec file")
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="constant overrides (spec-file form only)")
        p.add_argument("--source", required=True)
        p.add_argument("--target", required=True)
        p.add_argument("--t-points", type=float, nargs="+", required=True)
        p.add_argument("--solver", choices=["iterative", "direct"], default="iterative")
        p.add_argument("--inversion", choices=["euler", "laguerre"], default="euler")
        p.add_argument("--epsilon", type=float, default=1e-8)
        p.add_argument("--json", action="store_true")
        p.add_argument("--csv", action="store_true")

    q_passage = qsub.add_parser("passage", help="passage-time query over HTTP")
    add_query_measure(q_passage)
    q_passage.add_argument("--cdf", action="store_true")
    q_passage.add_argument("--quantile", type=float, default=None)
    q_passage.set_defaults(handler=_cmd_query_passage)

    q_transient = qsub.add_parser("transient", help="transient query over HTTP")
    add_query_measure(q_transient)
    q_transient.set_defaults(handler=_cmd_query_transient)

    q_stats = qsub.add_parser("stats", help="print the server's /v1/stats counters")
    q_stats.set_defaults(handler=_cmd_query_stats)

    q_jobs = qsub.add_parser(
        "jobs", help="submit and manage async jobs (POST ... \"async\": true)"
    )
    jsub = q_jobs.add_subparsers(dest="jobs_command", required=True)

    j_submit = jsub.add_parser("submit", help="enqueue a query; returns a job id")
    j_submit.add_argument("kind", choices=["passage", "transient"],
                          help="which measure to compute")
    add_query_measure(j_submit)
    j_submit.add_argument("--max-states", type=int, default=None)
    j_submit.add_argument("--cdf", action="store_true",
                          help="passage only: also invert the CDF")
    j_submit.add_argument("--quantile", type=float, default=None,
                          help="passage only: extract this quantile")
    j_submit.set_defaults(handler=_cmd_query_jobs_submit)

    j_status = jsub.add_parser("status", help="one job's state and progress")
    j_status.add_argument("job_id")
    j_status.add_argument("--json", action="store_true")
    j_status.set_defaults(handler=_cmd_query_jobs_status)

    j_wait = jsub.add_parser("wait", help="poll until the job finishes, then "
                                          "print its result")
    j_wait.add_argument("job_id")
    j_wait.add_argument("--timeout", type=float, default=None,
                        help="give up after this many seconds")
    j_wait.add_argument("--interval", type=float, default=0.25,
                        help="poll interval in seconds")
    j_wait.add_argument("--json", action="store_true")
    j_wait.add_argument("--csv", action="store_true")
    j_wait.set_defaults(handler=_cmd_query_jobs_wait)

    j_cancel = jsub.add_parser("cancel", help="cancel a queued or running job")
    j_cancel.add_argument("job_id")
    j_cancel.add_argument("--json", action="store_true")
    j_cancel.set_defaults(handler=_cmd_query_jobs_cancel)

    j_list = jsub.add_parser("list", help="this tenant's jobs, newest first")
    j_list.add_argument("--json", action="store_true")
    j_list.add_argument("--csv", action="store_true")
    j_list.set_defaults(handler=_cmd_query_jobs_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
