"""Command-line interface: analyse a DNAmaca model without writing Python.

The paper's tool chain is driven by a textual model specification; this CLI
provides the same workflow::

    semimarkov info model.dnamaca
    semimarkov passage model.dnamaca --source "p1 == 18" --target "p2 >= 18" \
        --t-points 10 20 30 40 50 --cdf --quantile 0.99
    semimarkov transient model.dnamaca --source "p1 == 18" --target "p2 >= 5" \
        --t-points 5 10 20 50
    semimarkov simulate model.dnamaca --target "p2 >= 18" --replications 2000

Long-lived serving (models built once, transform values cached and coalesced
across queries — see :mod:`repro.service`)::

    semimarkov serve --port 8400 --checkpoint /var/lib/semimarkov
    semimarkov query register model.dnamaca
    semimarkov query passage model.dnamaca --source "p1 == 18" \
        --target "p2 >= 18" --t-points 10 20 50 --cdf
    semimarkov query stats

Source and target sets are marking predicates written in the same expression
language as the specification's ``\\condition`` clauses (place names,
constants, comparisons, ``&&`` / ``||``).
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .core.jobs import PassageTimeJob
from .distributed import CheckpointStore, DistributedPipeline, MultiprocessingBackend, SerialBackend
from .dnamaca import load_model, marking_predicate, parse_model
from .petri import build_kernel, explore
from .simulation import PetriSimulator, empirical_cdf
from .smp import PassageTimeOptions, source_weights

__all__ = ["main", "build_parser"]


def _predicate_from_expression(source: str, constants: dict[str, float]):
    """Compile a marking predicate from a condition-style expression."""
    return marking_predicate(source, constants)


def _parse_overrides(overrides: list[str] | None) -> dict[str, float]:
    override_map: dict[str, float] = {}
    for item in overrides or []:
        if "=" not in item:
            raise SystemExit(f"--set expects NAME=VALUE, got {item!r}")
        name, value = item.split("=", 1)
        override_map[name.strip()] = float(value)
    return override_map


def _load(path: str, overrides: list[str] | None):
    text = Path(path).read_text()
    spec = parse_model(text, name=Path(path).stem)
    override_map = _parse_overrides(overrides)
    net = load_model(text, name=Path(path).stem, overrides=override_map or None)
    constants = dict(spec.constants)
    constants.update(override_map)
    return net, constants


def _state_sets(graph, constants, source_expr: str, target_expr: str):
    source_pred = _predicate_from_expression(source_expr, constants)
    target_pred = _predicate_from_expression(target_expr, constants)
    sources = graph.states_where(source_pred)
    targets = graph.states_where(target_pred)
    if not sources:
        raise SystemExit(f"no reachable marking satisfies the source predicate {source_expr!r}")
    if not targets:
        raise SystemExit(f"no reachable marking satisfies the target predicate {target_expr!r}")
    return sources, targets


def _backend(args):
    if args.workers and args.workers > 1:
        return MultiprocessingBackend(processes=args.workers, chunk_size=4)
    return SerialBackend(record_timings=True)


def _emit(rows, header, args):
    if args.json:
        print(json.dumps(rows, indent=2))
        return
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(
            (f"{v:.6g}" if isinstance(v, float) else str(v)).rjust(w)
            for v, w in zip(row, widths)
        ))


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def _cmd_info(args) -> int:
    net, constants = _load(args.model, args.set)
    graph = explore(net, max_states=args.max_states)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    usage = graph.transition_usage()
    print(f"model          : {net.name}")
    print(f"constants      : {constants}")
    print(f"places         : {', '.join(net.places)}")
    print(f"transitions    : {', '.join(t.name for t in net.transitions)}")
    print(f"reachable states: {graph.n_states}{' (truncated)' if graph.truncated else ''}")
    print(f"kernel         : {kernel.n_transitions} transitions, "
          f"{kernel.n_distributions} distinct sojourn distributions")
    print(f"deadlocks      : {len(graph.deadlocks)}")
    print("edges per net transition:")
    for name, count in sorted(usage.items()):
        print(f"  {name:>12}: {count}")
    return 0


def _cmd_passage(args) -> int:
    net, constants = _load(args.model, args.set)
    graph = explore(net, max_states=args.max_states)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    sources, targets = _state_sets(graph, constants, args.source, args.target)

    job = PassageTimeJob(
        kernel=kernel,
        alpha=source_weights(kernel, sources),
        targets=targets,
        options=PassageTimeOptions(epsilon=args.epsilon),
        solver=args.solver,
    )
    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None
    pipeline = DistributedPipeline(
        job, inversion=args.inversion, backend=_backend(args), checkpoint=checkpoint
    )

    t_points = np.asarray(args.t_points, dtype=float)
    density = pipeline.density(t_points)
    rows = [[float(t), float(f)] for t, f in zip(t_points, density)]
    header = ["t", "density"]
    if args.cdf:
        cdf = pipeline.cdf(t_points)
        header.append("cdf")
        for row, value in zip(rows, cdf):
            row.append(float(value))
    _emit(rows, header, args)

    if args.quantile is not None:
        from .core import PassageTimeSolver

        solver = PassageTimeSolver(
            kernel, sources=sources, targets=targets, method=args.solver,
            inversion=args.inversion,
        )
        lo, hi = min(t_points), max(t_points) * 10
        value = solver.quantile(args.quantile, lo, hi)
        print(f"quantile: P(T <= {value:.6g}) = {args.quantile}")
    stats = pipeline.statistics_summary()
    print(f"# s-points computed: {stats['s_points_computed']} "
          f"(cache: {stats['s_points_from_cache']}), "
          f"evaluation {stats['evaluation_seconds']:.2f}s via {stats['backend']}",
          file=sys.stderr)
    return 0


def _cmd_transient(args) -> int:
    net, constants = _load(args.model, args.set)
    graph = explore(net, max_states=args.max_states)
    kernel = build_kernel(graph, allow_truncated=graph.truncated)
    sources, targets = _state_sets(graph, constants, args.source, args.target)

    from .core import TransientSolver

    solver = TransientSolver(
        kernel, sources=sources, targets=targets,
        method=args.solver, inversion=args.inversion,
        options=PassageTimeOptions(epsilon=args.epsilon),
    )
    t_points = np.asarray(args.t_points, dtype=float)
    result = solver.solve(t_points)
    rows = [[float(t), float(p)] for t, p in zip(result.t_points, result.probability)]
    _emit(rows, ["t", "probability"], args)
    print(f"steady-state value: {result.steady_state:.6g}")
    return 0


def _cmd_simulate(args) -> int:
    net, constants = _load(args.model, args.set)
    target = _predicate_from_expression(args.target, constants)
    simulator = PetriSimulator(net)
    samples = simulator.sample_passage_times(
        target, n_samples=args.replications, rng=args.seed
    )
    quantiles = [0.05, 0.25, 0.5, 0.75, 0.95, 0.99]
    rows = [[q, float(np.quantile(samples, q))] for q in quantiles]
    _emit(rows, ["quantile", "t"], args)
    print(f"mean: {samples.mean():.6g}   std: {samples.std(ddof=1):.6g}   "
          f"replications: {len(samples)}")
    if args.t_points:
        cdf = empirical_cdf(samples, args.t_points)
        _emit([[float(t), float(p)] for t, p in zip(args.t_points, cdf)],
              ["t", "P(T<=t)"], args)
    return 0


# ---------------------------------------------------------------------------
# Serving
# ---------------------------------------------------------------------------


def _cmd_serve(args) -> int:
    from .service import AnalysisService, create_server

    service = AnalysisService(
        checkpoint_dir=args.checkpoint,
        cache_points=args.cache_points,
        default_max_states=args.max_states,
    )
    overrides = _parse_overrides(args.set)
    for path in args.preload or []:
        info = service.register_model(
            Path(path).read_text(), name=Path(path).stem,
            overrides=overrides or None,
        )
        print(f"preloaded {path}: model {info['model']} "
              f"({info['states']} states, {info['build_seconds']:.2f}s)")
    server = create_server(service, host=args.host, port=args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    print(f"semimarkov analysis server listening on http://{host}:{port} "
          f"(checkpoint: {args.checkpoint or 'none'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _model_reference(model: str, overrides: list[str] | None) -> dict:
    """Interpret a query's MODEL argument as a spec path or a digest."""
    override_map = _parse_overrides(overrides)
    if Path(model).exists():
        ref: dict = {"spec": Path(model).read_text()}
        if override_map:
            ref["overrides"] = override_map
        return ref
    if override_map:
        raise SystemExit(
            "--set needs the specification text; pass a spec file path, not a digest"
        )
    return {"model": model}


def _client(args):
    from .service import ServiceClient

    return ServiceClient(args.url)


def _print_query_stats(reply: dict) -> None:
    stats = reply.get("statistics", {})
    print(
        f"# s-points: {stats.get('s_points_required', 0)} required, "
        f"{stats.get('s_points_computed', 0)} computed, "
        f"{stats.get('s_points_from_memory', 0)} memory, "
        f"{stats.get('s_points_from_disk', 0)} disk, "
        f"{stats.get('s_points_coalesced', 0)} coalesced",
        file=sys.stderr,
    )


def _cmd_query_register(args) -> int:
    from .service import ServiceClientError

    override_map = _parse_overrides(args.set)
    try:
        info = _client(args).register_model(
            Path(args.model).read_text(),
            name=args.name or Path(args.model).stem,
            overrides=override_map or None,
            max_states=args.max_states,
        )
    except ServiceClientError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(f"model    : {info['model']} ({'built' if info['created'] else 'cached'})")
        print(f"name     : {info['name']}")
        print(f"states   : {info['states']}")
        print(f"build    : {info['build_seconds']:.3f}s")
    return 0


def _cmd_query_passage(args) -> int:
    from .service import ServiceClientError

    try:
        reply = _client(args).passage(
            **_model_reference(args.model, args.set),
            source=args.source,
            target=args.target,
            t_points=args.t_points,
            cdf=args.cdf,
            quantile=args.quantile,
            solver=args.solver,
            inversion=args.inversion,
            epsilon=args.epsilon,
        )
    except ServiceClientError as exc:
        raise SystemExit(str(exc))
    rows = [[float(t), float(f)] for t, f in zip(reply["t_points"], reply["density"])]
    header = ["t", "density"]
    if "cdf" in reply:
        header.append("cdf")
        for row, value in zip(rows, reply["cdf"]):
            row.append(float(value))
    _emit(rows, header, args)
    if "quantile" in reply:
        q = reply["quantile"]
        print(f"quantile: P(T <= {q['t']:.6g}) = {q['q']}")
    _print_query_stats(reply)
    return 0


def _cmd_query_transient(args) -> int:
    from .service import ServiceClientError

    try:
        reply = _client(args).transient(
            **_model_reference(args.model, args.set),
            source=args.source,
            target=args.target,
            t_points=args.t_points,
            solver=args.solver,
            inversion=args.inversion,
            epsilon=args.epsilon,
        )
    except ServiceClientError as exc:
        raise SystemExit(str(exc))
    rows = [[float(t), float(p)] for t, p in zip(reply["t_points"], reply["probability"])]
    _emit(rows, ["t", "probability"], args)
    if "steady_state" in reply:
        print(f"steady-state value: {reply['steady_state']:.6g}")
    _print_query_stats(reply)
    return 0


def _cmd_query_stats(args) -> int:
    from .service import ServiceClientError

    try:
        stats = _client(args).stats()
    except ServiceClientError as exc:
        raise SystemExit(str(exc))
    print(json.dumps(stats, indent=2))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="semimarkov",
        description="Passage-time and transient analysis of DNAmaca semi-Markov models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("model", help="path to the DNAmaca specification file")
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="override a declared constant (repeatable)")
        p.add_argument("--max-states", type=int, default=None,
                       help="cap on the explored state-space size")
        p.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    info = sub.add_parser("info", help="show model structure and state-space statistics")
    add_common(info)
    info.set_defaults(handler=_cmd_info)

    def add_measure_options(p):
        p.add_argument("--source", required=True, help="source-marking predicate expression")
        p.add_argument("--target", required=True, help="target-marking predicate expression")
        p.add_argument("--t-points", type=float, nargs="+", required=True,
                       help="time points to evaluate")
        p.add_argument("--solver", choices=["iterative", "direct"], default="iterative")
        p.add_argument("--inversion", choices=["euler", "laguerre"], default="euler")
        p.add_argument("--epsilon", type=float, default=1e-8,
                       help="truncation tolerance of the iterative sum")

    passage = sub.add_parser("passage", help="first-passage-time density / CDF / quantile")
    add_common(passage)
    add_measure_options(passage)
    passage.add_argument("--cdf", action="store_true", help="also invert the CDF")
    passage.add_argument("--quantile", type=float, default=None,
                         help="extract the given passage-time quantile")
    passage.add_argument("--workers", type=int, default=1,
                         help="worker processes for the s-point evaluations")
    passage.add_argument("--checkpoint", default=None,
                         help="directory for on-disk checkpointing of s-point results")
    passage.set_defaults(handler=_cmd_passage)

    transient = sub.add_parser("transient", help="transient state distribution")
    add_common(transient)
    add_measure_options(transient)
    transient.set_defaults(handler=_cmd_transient)

    simulate = sub.add_parser("simulate", help="Monte-Carlo passage-time estimation")
    add_common(simulate)
    simulate.add_argument("--target", required=True, help="target-marking predicate expression")
    simulate.add_argument("--replications", type=int, default=2000)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--t-points", type=float, nargs="*", default=None,
                          help="optionally report the empirical CDF at these times")
    simulate.set_defaults(handler=_cmd_simulate)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived analysis server (model registry, coalescing "
             "scheduler, tiered result cache, HTTP JSON API)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8400,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--checkpoint", default=None,
                       help="directory for the on-disk result-cache tier")
    serve.add_argument("--cache-points", type=int, default=500_000,
                       help="in-memory cache bound (total s-points)")
    serve.add_argument("--max-states", type=int, default=None,
                       help="default state-space cap for registered models")
    serve.add_argument("--preload", action="append", metavar="MODEL",
                       help="register this spec file at startup (repeatable)")
    serve.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="constant overrides applied to preloaded models")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(handler=_cmd_serve)

    query = sub.add_parser("query", help="query a running analysis server")
    query.add_argument("--url", default="http://127.0.0.1:8400",
                       help="base URL of the server")
    qsub = query.add_subparsers(dest="query_command", required=True)

    q_register = qsub.add_parser("register", help="register a model spec with the server")
    q_register.add_argument("model", help="path to the DNAmaca specification file")
    q_register.add_argument("--name", default=None)
    q_register.add_argument("--set", action="append", metavar="NAME=VALUE")
    q_register.add_argument("--max-states", type=int, default=None)
    q_register.add_argument("--json", action="store_true")
    q_register.set_defaults(handler=_cmd_query_register)

    def add_query_measure(p):
        p.add_argument("model", help="model digest, or path to a spec file")
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="constant overrides (spec-file form only)")
        p.add_argument("--source", required=True)
        p.add_argument("--target", required=True)
        p.add_argument("--t-points", type=float, nargs="+", required=True)
        p.add_argument("--solver", choices=["iterative", "direct"], default="iterative")
        p.add_argument("--inversion", choices=["euler", "laguerre"], default="euler")
        p.add_argument("--epsilon", type=float, default=1e-8)
        p.add_argument("--json", action="store_true")

    q_passage = qsub.add_parser("passage", help="passage-time query over HTTP")
    add_query_measure(q_passage)
    q_passage.add_argument("--cdf", action="store_true")
    q_passage.add_argument("--quantile", type=float, default=None)
    q_passage.set_defaults(handler=_cmd_query_passage)

    q_transient = qsub.add_parser("transient", help="transient query over HTTP")
    add_query_measure(q_transient)
    q_transient.set_defaults(handler=_cmd_query_transient)

    q_stats = qsub.add_parser("stats", help="print the server's /v1/stats counters")
    q_stats.set_defaults(handler=_cmd_query_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
