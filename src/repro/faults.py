"""Deterministic fault injection: one mechanism for every failure domain.

The durability machinery built up by the distributed/serving layers — per-block
checkpoints, pool rebuilds, the durable job log, artifact checksums, the
hung-worker watchdog — is only trustworthy if every defence is *exercised*.
This module provides the named fault points those defences are tested through:

* a **fault point** is a plain ``faults.fire("checkpoint.merge", digest=...)``
  call at an interesting place in the code.  With no plan installed it is a
  no-op (one dict lookup), so production paths pay nothing;
* a :class:`FaultPlan` is a set of :class:`FaultRule` s — *which* points
  misbehave, *how* (``crash | hang | delay | corrupt-bytes | enospc | raise``)
  and *when* (probability, after-N-hits, at-most-N-times), seeded so a chaos
  run is reproducible;
* plans are installed programmatically (:func:`install` / :func:`active`) or
  through the ``REPRO_FAULTS`` environment variable, which worker processes
  inherit — the one way to reach fault points inside a multiprocessing pool.

``REPRO_FAULTS`` grammar (semicolon-separated clauses)::

    REPRO_FAULTS="seed=42;state=/tmp/chaos;worker.solve=crash:limit=1,block=1"

    seed=N                 deterministic seed for probability / byte picks
    state=DIR              cross-process bookkeeping directory (see below)
    POINT=ACTION[:OPTS]    one rule; OPTS are comma-separated key=value pairs

Rule options: ``p`` (probability in [0,1], default 1), ``after`` (skip the
first N hits), ``limit`` (fire at most N times), ``seconds`` (hang/delay
duration).  Any other key is a *label filter* matched against the keyword
arguments of the ``fire`` call (``block=1`` only fires on block index 1).

With a ``state`` directory, ``limit`` is enforced **across processes** by
claiming ``O_EXCL`` marker files — the replacement for ad-hoc sentinel-file
hooks: a rule with ``limit=1`` crashes the first worker that reaches the
point and lets the respawned worker through.  Without a state directory,
``limit`` (like ``after`` and ``p``) is counted per process.

Actions at a ``fire`` point:

``crash``           ``os._exit(1)`` — the process dies as if SIGKILLed
``hang``            sleep for ``seconds`` (default 3600) — watchdog food
``delay``           sleep for ``seconds`` (default 0.05) and continue
``enospc``          raise ``OSError(ENOSPC)`` — a full disk
``raise``           raise :class:`FaultInjected`
``corrupt-bytes``   no-op at ``fire``; consumed by :func:`mangle` /
                    :func:`corrupt_buffer` on the data path of the same point

Every injected fault increments ``repro_faults_injected_total{point,action}``.
"""
from __future__ import annotations

import contextlib
import errno
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "FaultInjected",
    "FaultRule",
    "FaultPlan",
    "active",
    "clear",
    "corrupt_buffer",
    "fire",
    "install",
    "mangle",
]

ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("crash", "hang", "delay", "corrupt-bytes", "enospc", "raise")

#: default sleep lengths when a rule does not set ``seconds``
_HANG_SECONDS = 3600.0
_DELAY_SECONDS = 0.05


class FaultInjected(RuntimeError):
    """An injected ``raise`` fault (never raised by real failures)."""

    def __init__(self, point: str, action: str = "raise"):
        super().__init__(f"injected fault at {point!r} (action={action})")
        self.point = point
        self.action = action

    def __reduce__(self):
        # Crosses the worker->master pickle boundary; the default reduction
        # would replay the formatted message into ``point``.
        return (FaultInjected, (self.point, self.action))


@dataclass
class FaultRule:
    """One (point, action) rule with its trigger conditions."""

    point: str
    action: str
    probability: float = 1.0
    #: skip the first N matching hits (per process)
    after: int = 0
    #: fire at most N times (cross-process when the plan has a state dir)
    limit: int | None = None
    #: hang / delay duration
    seconds: float | None = None
    #: label filters matched (as strings) against fire() keyword arguments
    match: dict = field(default_factory=dict)
    _hits: int = field(default=0, repr=False, compare=False)
    _fired: int = field(default=0, repr=False, compare=False)

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1")

    def matches(self, point: str, labels: dict) -> bool:
        if point != self.point:
            return False
        return all(
            str(labels.get(key)) == str(value) for key, value in self.match.items()
        )

    def spec(self) -> str:
        """This rule as one ``REPRO_FAULTS`` clause."""
        opts = []
        if self.probability < 1.0:
            opts.append(f"p={self.probability!r}")
        if self.after:
            opts.append(f"after={self.after}")
        if self.limit is not None:
            opts.append(f"limit={self.limit}")
        if self.seconds is not None:
            opts.append(f"seconds={self.seconds!r}")
        opts.extend(f"{k}={v}" for k, v in self.match.items())
        head = f"{self.point}={self.action}"
        return head + (":" + ",".join(opts) if opts else "")


class FaultPlan:
    """A seeded set of fault rules, installable in-process or via the env."""

    def __init__(self, rules=(), *, seed: int = 0, state_dir=None):
        self.rules: list[FaultRule] = list(rules)
        self.seed = int(seed)
        self.state_dir = Path(state_dir) if state_dir else None
        self._lock = threading.Lock()
        self._rngs: dict[int, random.Random] = {}

    # ------------------------------------------------------------- building
    def rule(self, point: str, action: str, **options) -> "FaultPlan":
        """Append a rule (builder style); unknown options become label filters."""
        known = {}
        for name in ("probability", "after", "limit", "seconds"):
            if name in options:
                known[name] = options.pop(name)
        if "p" in options:
            known["probability"] = options.pop("p")
        self.rules.append(FaultRule(point, action, match=options, **known))
        return self

    def spec(self) -> str:
        """The whole plan as a ``REPRO_FAULTS`` value (for child processes)."""
        clauses = [f"seed={self.seed}"]
        if self.state_dir is not None:
            clauses.append(f"state={self.state_dir}")
        clauses.extend(rule.spec() for rule in self.rules)
        return ";".join(clauses)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` value (see the module docstring)."""
        plan = cls()
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            head, _, value = clause.partition("=")
            head = head.strip()
            if head == "seed":
                plan.seed = int(value)
                continue
            if head == "state":
                plan.state_dir = Path(value)
                continue
            action, _, opt_text = value.partition(":")
            action = action.strip()
            options: dict = {}
            if opt_text:
                for pair in opt_text.split(","):
                    key, _, raw = pair.partition("=")
                    key = key.strip()
                    raw = raw.strip()
                    if key in ("p", "probability"):
                        options["probability"] = float(raw)
                    elif key == "after":
                        options["after"] = int(raw)
                    elif key == "limit":
                        options["limit"] = int(raw)
                    elif key == "seconds":
                        options["seconds"] = float(raw)
                    else:
                        options[key] = raw
            plan.rule(head, action, **options)
        return plan

    # ------------------------------------------------------------- firing
    def _rng(self, index: int, point: str) -> random.Random:
        rng = self._rngs.get(index)
        if rng is None:
            rng = self._rngs[index] = random.Random(f"{self.seed}:{index}:{point}")
        return rng

    def _claim(self, index: int, limit: int) -> bool:
        """Claim one cross-process firing token for rule ``index``."""
        directory = self.state_dir
        directory.mkdir(parents=True, exist_ok=True)
        for token in range(limit):
            marker = directory / f"rule{index}.fire{token}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                continue
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return True
        return False

    def _should_fire(self, index: int, rule: FaultRule) -> bool:
        with self._lock:
            rule._hits += 1
            if rule._hits <= rule.after:
                return False
            if (
                rule.probability < 1.0
                and self._rng(index, rule.point).random() >= rule.probability
            ):
                return False
            if rule.limit is not None:
                if self.state_dir is not None:
                    return self._claim(index, rule.limit)
                if rule._fired >= rule.limit:
                    return False
            rule._fired += 1
            return True

    def fire(self, point: str, **labels) -> None:
        for index, rule in enumerate(self.rules):
            if rule.action == "corrupt-bytes" or not rule.matches(point, labels):
                continue
            if not self._should_fire(index, rule):
                continue
            _note_injected(point, rule.action)
            if rule.action == "crash":
                os._exit(1)
            elif rule.action == "hang":
                time.sleep(rule.seconds if rule.seconds is not None else _HANG_SECONDS)
            elif rule.action == "delay":
                time.sleep(rule.seconds if rule.seconds is not None else _DELAY_SECONDS)
            elif rule.action == "enospc":
                raise OSError(errno.ENOSPC, "No space left on device (injected)")
            elif rule.action == "raise":
                raise FaultInjected(point)

    def _corruption_rule(self, point: str, labels: dict) -> int | None:
        for index, rule in enumerate(self.rules):
            if rule.action != "corrupt-bytes" or not rule.matches(point, labels):
                continue
            if self._should_fire(index, rule):
                return index
        return None

    def mangle(self, point: str, data: bytes, **labels) -> bytes:
        index = self._corruption_rule(point, labels)
        if index is None or not data:
            return data
        _note_injected(point, "corrupt-bytes")
        rng = self._rng(index, point)
        mutated = bytearray(data)
        for _ in range(max(1, len(mutated) // 1024)):
            mutated[rng.randrange(len(mutated))] ^= 0xFF
        return bytes(mutated)

    def corrupt_buffer(self, point: str, buf, *, start: int = 0, **labels) -> bool:
        index = self._corruption_rule(point, labels)
        if index is None:
            return False
        size = len(buf)
        if start >= size:
            return False
        _note_injected(point, "corrupt-bytes")
        rng = self._rng(index, point)
        for _ in range(max(1, (size - start) // (1 << 20))):
            position = rng.randrange(start, size)
            buf[position] = buf[position] ^ 0xFF
        return True


# ---------------------------------------------------------------------------
# Module-level switchboard.  A programmatically installed plan wins; otherwise
# the environment spec is parsed (and cached against the raw string, so tests
# that monkeypatch REPRO_FAULTS see their plan without an import-order dance).
# ---------------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[str | None, FaultPlan | None] = (None, None)


def _active_plan() -> FaultPlan | None:
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get(ENV_VAR) or None
    global _ENV_CACHE
    if _ENV_CACHE[0] != spec:
        _ENV_CACHE = (spec, FaultPlan.parse(spec) if spec else None)
    return _ENV_CACHE[1]


def install(plan: FaultPlan) -> None:
    """Install ``plan`` for this process (overrides any env spec)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Remove the installed plan and drop any cached env plan state."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = (None, None)


@contextlib.contextmanager
def active(plan: FaultPlan):
    """Scoped :func:`install` for tests."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def fire(point: str, **labels) -> None:
    """Trigger the fault point ``point``; a no-op without an active plan."""
    plan = _active_plan()
    if plan is not None:
        plan.fire(point, **labels)


def mangle(point: str, data: bytes, **labels) -> bytes:
    """Pass ``data`` through any corrupt-bytes rule on ``point``."""
    plan = _active_plan()
    if plan is None:
        return data
    return plan.mangle(point, data, **labels)


def corrupt_buffer(point: str, buf, *, start: int = 0, **labels) -> bool:
    """Flip bytes in-place in a writable buffer past ``start``; True if fired."""
    plan = _active_plan()
    if plan is None:
        return False
    return plan.corrupt_buffer(point, buf, start=start, **labels)


def _note_injected(point: str, action: str) -> None:
    from .obs.metrics import get_metrics

    get_metrics().counter(
        "repro_faults_injected_total",
        "faults injected by point and action",
        ("point", "action"),
    ).inc(1, point=point, action=action)
