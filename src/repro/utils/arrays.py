"""Small NumPy array helpers shared across layers."""
from __future__ import annotations

import numpy as np

__all__ = ["ragged_take"]


def ragged_take(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all ``i``.

    The vectorized gather for ragged slices (CSR rows, offset tables):
    equivalent to ``np.concatenate([values[s:s+c] for s, c in zip(starts,
    counts)])`` without the Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return values[:0]
    positions = np.repeat(starts, counts) + (
        np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    )
    return values[positions]
