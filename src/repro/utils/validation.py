"""Lightweight argument-validation helpers used across the library.

All validators raise :class:`ValueError` (or :class:`TypeError` for wrong
types) with messages that name the offending parameter, so user-facing API
errors read well without every call site rebuilding the same strings.
"""
from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "require",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability_vector",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is finite and strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is finite and non-negative."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    lo: float,
    hi: float,
    name: str = "value",
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[lo, hi]`` (or ``(lo, hi)``)."""
    value = float(value)
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not np.isfinite(value) or not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability_vector(
    values: Iterable[float] | Sequence[float] | np.ndarray,
    name: str = "probabilities",
    *,
    tol: float = 1e-9,
    normalise: bool = False,
) -> np.ndarray:
    """Validate a vector of probabilities that should sum to one.

    Parameters
    ----------
    values:
        The candidate probability vector.
    name:
        Parameter name used in error messages.
    tol:
        Permitted absolute deviation of the sum from one.
    normalise:
        When true, rescale the vector to sum to exactly one instead of
        raising if the sum deviates by more than ``tol`` (entries must still
        be non-negative and the sum strictly positive).
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if np.any(~np.isfinite(arr)) or np.any(arr < -tol):
        raise ValueError(f"{name} must contain finite non-negative entries")
    arr = np.clip(arr, 0.0, None)
    total = float(arr.sum())
    if normalise:
        if total <= 0.0:
            raise ValueError(f"{name} must have a strictly positive sum to normalise")
        return arr / total
    if abs(total - 1.0) > tol:
        raise ValueError(f"{name} must sum to 1 (got {total!r})")
    return arr
