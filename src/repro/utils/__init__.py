"""Shared utilities: validation helpers, timing, deterministic RNG handling.

These helpers are deliberately small and dependency-free so that every other
subpackage (distributions, smp, petri, distributed, ...) can rely on them
without import cycles.
"""
from .validation import (
    check_probability,
    check_positive,
    check_non_negative,
    check_probability_vector,
    check_in_range,
    require,
)
from .timing import Stopwatch, format_seconds
from .rng import as_generator, spawn_generators

__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_probability_vector",
    "check_in_range",
    "require",
    "Stopwatch",
    "format_seconds",
    "as_generator",
    "spawn_generators",
]
