"""Wall-clock timing helpers used by the distributed pipeline and benchmarks."""
from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_seconds"]


@dataclass
class Stopwatch:
    """A tiny cumulative stopwatch.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)

    The stopwatch accumulates across multiple ``with`` blocks, which is what
    the master process uses to separate dispatch time from inversion time.
    """

    elapsed: float = 0.0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("Stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    @property
    def running(self) -> bool:
        return self._started is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def format_seconds(seconds: float) -> str:
    """Render a duration as a compact human-readable string."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rem:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes:02d}m{rem:04.1f}s"
