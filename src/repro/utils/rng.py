"""Random-number-generator plumbing.

The simulators accept either an integer seed, ``None`` or an existing
:class:`numpy.random.Generator`; these helpers normalise that into generators
and produce independent child streams for parallel replications.
"""
from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a freshly seeded generator, an integer produces a
    deterministic generator, and an existing generator is passed through.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.Generator, count: int
) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Independence is provided by :meth:`numpy.random.SeedSequence.spawn`, the
    recommended mechanism for parallel streams; this is how the simulation
    workers and the multiprocessing backend obtain per-worker randomness.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]
