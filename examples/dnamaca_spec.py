#!/usr/bin/env python3
"""Working from a DNAmaca-style textual model specification.

The paper specifies its models in a semi-Markov extension of the DNAmaca
language (its Fig. 3 shows transition ``t5`` of the voting system).  This
example:

1. prints the generated specification text for a small voting configuration,
2. parses and compiles it into an SM-SPN,
3. generates the semi-Markov state space and checks it against the
   natively-constructed Python model,
4. runs a passage-time and a transient analysis through the public api
   facade (``repro.api.Model``), with predicates written in the
   specification's own expression language.

Run:  python examples/dnamaca_spec.py
"""
from __future__ import annotations

import numpy as np

from repro.api import Model
from repro.dnamaca import load_model, parse_model
from repro.models import (
    SCALED_CONFIGURATIONS,
    build_voting_graph,
    voting_spec_text,
)
from repro.petri import explore_vectorized


def main() -> None:
    params = SCALED_CONFIGURATIONS["tiny"]
    spec_text = voting_spec_text(params)

    # ------------------------------------------------------------------
    # 1. Show the part of the specification the paper reproduces (t5).
    # ------------------------------------------------------------------
    t5_block = spec_text[spec_text.index(r"\transition{t5}") :]
    t5_block = t5_block[: t5_block.index(r"\transition{t6}")]
    print("transition t5 as written in the specification (cf. the paper's Fig. 3):")
    print(t5_block)

    # ------------------------------------------------------------------
    # 2. Parse, compile, and inspect.
    # ------------------------------------------------------------------
    spec = parse_model(spec_text, name="voting")
    print(f"parsed model: {len(spec.places)} places, {len(spec.transitions)} transitions, "
          f"constants {spec.constants}")

    net = load_model(spec_text, name="voting")
    graph = explore_vectorized(net)
    reference = build_voting_graph(params)
    print(f"state space from the specification : {graph.n_states} states / {graph.n_edges} edges")
    print(f"state space from the Python model  : {reference.n_states} states / {reference.n_edges} edges")
    def canonical(markings: np.ndarray) -> np.ndarray:
        return markings[np.lexsort(markings.T[::-1])]

    assert np.array_equal(
        canonical(graph.marking_array()), canonical(reference.marking_array())
    ), "state spaces must agree"

    # ------------------------------------------------------------------
    # 3. Analyses through the api facade, with predicate *expressions*.
    # ------------------------------------------------------------------
    model = Model.from_spec(spec_text, name="voting")
    voting_started = "p1 == CC && p3 == MM && p5 == NN"
    all_voted = "p2 == CC"

    ts = np.linspace(4.0, 16.0, 7)
    passage = model.passage(voting_started, all_voted).density(ts).cdf().run()
    print(f"\npassage time to process all {params.voters} voters:")
    for t, F in zip(passage.t_points, passage.cdf):
        print(f"  P(done by {t:6.2f}) = {F:.4f}")

    transient = (
        model.transient(voting_started, "p2 >= 2")
        .probability([2.0, 5.0, 10.0, 50.0])
        .run()
    )
    print(f"\nP(at least 2 voters done at t) -> steady state {transient.steady_state:.4f}:")
    for t, p in zip(transient.t_points, transient.probability):
        print(f"  t={t:6.1f}: {p:.4f}")

    # ------------------------------------------------------------------
    # 4. Re-parameterise the same specification via constant overrides.
    # ------------------------------------------------------------------
    bigger = Model.from_spec(spec_text, overrides={"CC": 6, "MM": 3})
    print(f"\nsame specification with CC=6, MM=3 overrides: {bigger.n_states} states "
          f"(digest {bigger.digest})")


if __name__ == "__main__":
    main()
