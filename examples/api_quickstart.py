#!/usr/bin/env python3
"""The public analysis API: Model -> Query -> Engine, one surface for everything.

This walkthrough drives the whole pipeline (DNAmaca spec -> reachability ->
SMP kernel -> s-point transform evaluation -> Laplace inversion) through
``repro.api`` — the same facade the CLI, the analysis service, and the
benchmarks use:

1. a lazy, content-addressed ``Model`` from an inline specification,
2. a fluent passage-time query (density + CDF + quantile) and its plan,
3. the *same query object* executed on the inline, multiprocessing,
   distributed (with checkpoint/resume) and remote (live HTTP server)
   engines — returning identical numbers,
4. a transient query and a validating Monte-Carlo simulation query.

Run:  python examples/api_quickstart.py
"""
from __future__ import annotations

import tempfile
import threading

import numpy as np

from repro.api import DistributedEngine, Model

MACHINE_SPEC = r"""
% A machine shop: K machines failing (Erlang) and being repaired (uniform).
\constant{K}{3}
\model{
  \place{up}{K}
  \place{down}{0}
  \transition{fail}{
    \condition{up > 0}
    \action{ next->up = up - 1; next->down = down + 1; }
    \weight{1.0}
    \priority{1}
    \sojourntimeLT{ return erlangLT(2.0, 3, s); }
  }
  \transition{repair}{
    \condition{down > 0}
    \action{ next->up = up + 1; next->down = down - 1; }
    \weight{2.0}
    \priority{1}
    \sojourntimeLT{ return uniformLT(1.0, 2.0, s); }
  }
}
"""


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A lazy, content-addressed model.
    # ------------------------------------------------------------------
    model = Model.from_spec(MACHINE_SPEC, name="machine-shop")
    print(f"model: {model}")
    print(f"constants (no state space built yet): {model.constants}")

    # ------------------------------------------------------------------
    # 2. A fluent query and its evaluation plan.
    # ------------------------------------------------------------------
    t_points = [1.0, 2.0, 4.0, 8.0]
    query = (
        model.passage("up == K", "down == K")   # all machines down
        .density(t_points)
        .cdf()
        .quantile(0.9)
    )
    plan = query.plan()
    print(f"\nquery plan before any evaluation: {plan.describe()}")

    # ------------------------------------------------------------------
    # 3. One query, four engines, identical numbers.
    # ------------------------------------------------------------------
    results = {"inline": query.run()}
    results["multiprocessing"] = query.run(engine="multiprocessing", processes=2)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        engine = DistributedEngine(checkpoint=checkpoint_dir)
        results["distributed"] = query.run(engine)
        resumed = query.run(DistributedEngine(checkpoint=checkpoint_dir))
        print(f"\ndistributed resume recomputed "
              f"{resumed.statistics['s_points_computed']} s-points "
              f"(all {resumed.statistics['s_points_from_cache']} from the checkpoint)")

    from repro.service import AnalysisService, create_server

    server = create_server(AnalysisService(), port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    results["remote"] = query.run(engine="remote", url=url)
    warm = query.run(engine="remote", url=url)
    print(f"remote warm repeat evaluated "
          f"{warm.statistics['s_points_computed']} s-points "
          f"({warm.statistics['s_points_from_memory']} from server memory)")
    server.shutdown()
    server.server_close()

    reference = results["inline"]
    print(f"\n{'t':>6} {'f(t)':>12} {'F(t)':>12}")
    for t, f, F in zip(reference.t_points, reference.density, reference.cdf):
        print(f"{t:6.2f} {f:12.6f} {F:12.6f}")
    print(f"90th percentile: {reference.quantiles[0.9]:.4f}")

    print("\nengine parity (max |diff| vs inline):")
    for name, result in results.items():
        worst = max(
            float(np.max(np.abs(result.density - reference.density))),
            float(np.max(np.abs(result.cdf - reference.cdf))),
            abs(result.quantiles[0.9] - reference.quantiles[0.9]),
        )
        print(f"  {name:>16}: {worst:.2e}")
        assert worst < 1e-10

    # ------------------------------------------------------------------
    # 4. Transient probability and validating simulation.
    # ------------------------------------------------------------------
    transient = (
        model.transient("up == K", "up > 0").probability([0.5, 2.0, 10.0, 50.0]).run()
    )
    print("\ntransient availability P(any machine up at t):")
    for t, p in zip(transient.t_points, transient.probability):
        print(f"  t={t:6.1f}   {p:.4f}")
    print(f"steady state: {transient.steady_state:.4f}")

    simulated = model.simulate(
        "down == K", replications=5000, seed=42, t_points=t_points
    ).run()
    worst = float(np.max(np.abs(simulated.cdf - reference.cdf)))
    print(f"\nsimulation cross-check ({simulated.n_replications} replications): "
          f"max |F_analytic - F_simulated| = {worst:.3f}")


if __name__ == "__main__":
    main()
