#!/usr/bin/env python3
"""The distributed master/worker analysis pipeline and its scalability.

Reproduces the architecture of Section 4 and the scalability study of
Section 5.3.3 (Table 2):

1. the master computes the s-points required by the Euler inversion of a
   voting-system passage time (5 t-points x 33 evaluations = 165 s-points,
   matching the paper's task count),
2. the s-points are evaluated by a serial backend (recording per-task cost),
   by a real multiprocessing pool, and — for the Table 2 shape — by a
   simulated cluster with 1/8/16/32 slaves,
3. everything is checkpointed on disk, and the script demonstrates a resumed
   run that does no recomputation.

Run:  python examples/distributed_pipeline.py
"""
from __future__ import annotations

import tempfile

import numpy as np

from repro.core.jobs import PassageTimeJob
from repro.distributed import (
    CheckpointStore,
    DistributedPipeline,
    MultiprocessingBackend,
    SerialBackend,
    scalability_table,
)
from repro.models import (
    SCALED_CONFIGURATIONS,
    all_voted_predicate,
    build_voting_kernel,
    initial_marking_predicate,
)
from repro.smp import source_weights


def main() -> None:
    params = SCALED_CONFIGURATIONS["small"]
    kernel, graph = build_voting_kernel(params)
    sources = graph.states_where(initial_marking_predicate(params))
    targets = graph.states_where(all_voted_predicate(params))
    job = PassageTimeJob(
        kernel=kernel, alpha=source_weights(kernel, sources), targets=targets
    )
    print(f"voting system {params.label}: {kernel.n_states} states")

    # The paper's Table 2 setting: 5 t-points under Euler inversion.
    t_points = np.linspace(10.0, 40.0, 5)

    # ------------------------------------------------------------------
    # 1. Serial master run with on-disk checkpointing.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        store = CheckpointStore(checkpoint_dir)
        serial = SerialBackend(record_timings=True)
        pipeline = DistributedPipeline(job, backend=serial, checkpoint=store)
        result = pipeline.run(t_points)

        stats = pipeline.statistics
        print(f"\nserial run: {stats.s_points_computed} s-point evaluations "
              f"in {stats.evaluation_seconds:.2f}s "
              f"(+ {stats.inversion_seconds:.3f}s inversion)")
        print(f"{'t':>8} {'f(t)':>12} {'F(t)':>10}")
        for t, f, F in zip(result.t_points, result.density, result.cdf):
            print(f"{t:8.2f} {f:12.6f} {F:10.4f}")

        # Resume: a second pipeline reuses every checkpointed s-point.
        resumed = DistributedPipeline(job, checkpoint=store)
        resumed.run(t_points)
        print(f"\nresumed run recomputed {resumed.statistics.s_points_computed} s-points "
              f"({resumed.statistics.s_points_from_cache} served from the checkpoint)")

        durations = serial.task_durations

    # ------------------------------------------------------------------
    # 2. Real multiprocessing speed-up on this machine.
    # ------------------------------------------------------------------
    import os

    workers = min(4, os.cpu_count() or 1)
    mp_backend = MultiprocessingBackend(processes=workers, chunk_size=4)
    mp_pipeline = DistributedPipeline(job, backend=mp_backend)
    mp_pipeline.density(t_points)
    serial_time = sum(durations)
    print(f"\nmultiprocessing backend ({workers} workers): "
          f"{mp_backend.last_wall_clock:.2f}s wall-clock vs {serial_time:.2f}s serial compute")

    # ------------------------------------------------------------------
    # 3. Table 2: simulated cluster at 1 / 8 / 16 / 32 slaves.
    # ------------------------------------------------------------------
    print("\nSimulated cluster scalability (Table 2 shape), using the measured "
          f"per-s-point durations of the serial run ({len(durations)} tasks):")
    print(f"{'slaves':>7} {'time (s)':>10} {'speedup':>9} {'efficiency':>11}")
    for row in scalability_table(durations, (1, 8, 16, 32)):
        print(f"{row.slaves:7d} {row.time_seconds:10.2f} {row.speedup:9.2f} {row.efficiency:11.3f}")
    print("\npaper's Table 2 for comparison: "
          "549.1s/1.00/1.000, 71.1s/7.72/0.965, 39.2s/14.02/0.876, 24.1s/22.79/0.712")


if __name__ == "__main__":
    main()
