#!/usr/bin/env python3
"""Quickstart: passage-time density, CDF, quantiles and transients of a small SMP.

The model is a machine that alternates between *working* and *broken*:

* time-to-failure is Erlang(rate=2, shape=3)  (mean 1.5),
* repair time is Uniform(1, 2)                (mean 1.5, non-exponential!).

Because the repair time is not exponential this is a semi-Markov process, not
a Markov chain — exactly the class of model the paper targets.  The script
computes the analytic passage-time density and quantiles with the iterative
algorithm + Euler inversion, then cross-checks against simulation.

Run:  python examples/quickstart.py
"""
from __future__ import annotations

import numpy as np

from repro import PassageTimeSolver, SMPBuilder, TransientSolver
from repro.distributions import Erlang, Uniform
from repro.simulation import PassageTimeSample, simulate_passage_times


def build_machine_kernel():
    builder = SMPBuilder()
    builder.add_transition("working", "broken", 1.0, Erlang(2.0, 3))
    builder.add_transition("broken", "working", 1.0, Uniform(1.0, 2.0))
    return builder.build()


def main() -> None:
    kernel = build_machine_kernel()
    working = kernel.state_index("working")
    broken = kernel.state_index("broken")

    # ------------------------------------------------------------------
    # 1. Passage time working -> broken (time to failure).
    # ------------------------------------------------------------------
    solver = PassageTimeSolver(kernel, sources=[working], targets=[broken])
    t_points = np.linspace(0.1, 6.0, 13)
    density = solver.density(t_points)
    cdf = solver.cdf(t_points)

    print("Time-to-failure (working -> broken)")
    print(f"{'t':>6} {'f(t)':>12} {'F(t)':>12}")
    for t, f, F in zip(t_points, density, cdf):
        print(f"{t:6.2f} {f:12.6f} {F:12.6f}")

    print(f"\nmean time to failure        : {solver.mean():.4f}  (exact 1.5)")
    print(f"95th percentile of failure  : {solver.quantile(0.95, 0.1, 20.0):.4f}")
    print(f"99th percentile of failure  : {solver.quantile(0.99, 0.1, 20.0):.4f}")

    # ------------------------------------------------------------------
    # 2. Cycle time working -> working (failure + repair).
    # ------------------------------------------------------------------
    cycle = PassageTimeSolver(kernel, sources=[working], targets=[working])
    print(f"\nmean failure+repair cycle   : {cycle.mean():.4f}  (exact 3.0)")
    print(f"P(cycle completes within 4) : {cycle.cdf([4.0])[0]:.4f}")

    # ------------------------------------------------------------------
    # 3. Transient availability: P(machine is working at time t).
    # ------------------------------------------------------------------
    transient = TransientSolver(kernel, sources=[working], targets=[working])
    ts = np.array([0.5, 1.0, 2.0, 5.0, 10.0, 30.0])
    probs = transient.probability(ts)
    print("\nTransient availability P(working at t):")
    for t, p in zip(ts, probs):
        print(f"  t={t:6.1f}   {p:.4f}")
    print(f"steady-state availability   : {transient.steady_state():.4f}  (exact 0.5)")

    # ------------------------------------------------------------------
    # 4. Validation against simulation (the paper's Figs. 4/6 methodology).
    # ------------------------------------------------------------------
    samples = PassageTimeSample(
        simulate_passage_times(kernel, [working], [broken], n_samples=20_000, rng=42)
    )
    lo, hi = samples.mean_confidence_interval()
    print("\nSimulation cross-check (20k replications):")
    print(f"  simulated mean time to failure: {samples.mean():.4f}  (95% CI [{lo:.4f}, {hi:.4f}])")
    print(f"  simulated 99th percentile     : {samples.quantile(0.99):.4f}")
    print(f"  analytic  99th percentile     : {solver.quantile(0.99, 0.1, 20.0):.4f}")


if __name__ == "__main__":
    main()
