#!/usr/bin/env python3
"""Reliability analysis of a web-server cluster: rare-event passage times.

The paper's Fig. 6 argues that very-low-probability events (complete system
failure) are where the analytic method beats simulation: a simulator needs
rare-event techniques or unreasonable run times to observe them at all.

This example demonstrates that workflow on the web-server cluster model:

1. build the SM-SPN and its semi-Markov state space,
2. compute the density, CDF and quantiles of the time until every server is
   down (the analytic method has no trouble with small probabilities),
3. attempt the same by simulation with a modest replication budget and report
   how poorly the rare tail is covered,
4. extract operational reliability numbers (e.g. "probability the cluster
   survives a full shift").

Run:  python examples/failure_mode_reliability.py
"""
from __future__ import annotations

import numpy as np

from repro.models import web_server_net
from repro.petri import build_kernel, explore_vectorized, passage_solver
from repro.simulation import PetriSimulator
from repro.smp import smp_steady_state


def main() -> None:
    servers, queue_capacity = 3, 4
    net = web_server_net(servers=servers, queue_capacity=queue_capacity)
    graph = explore_vectorized(net)
    kernel = build_kernel(graph)
    print(f"web-server cluster: {servers} servers, buffer {queue_capacity}")
    print(f"state space: {graph.n_states} states, {graph.n_edges} transitions\n")

    healthy = lambda m: m["failed"] == 0
    all_down = lambda m: m["failed"] >= servers

    # ------------------------------------------------------------------
    # 1. Time from a fully healthy cluster to a total outage.
    # ------------------------------------------------------------------
    outage = passage_solver(graph, healthy, all_down)
    mean_ttf = outage.mean()
    print(f"mean time to total outage: {mean_ttf:.1f} time units")

    horizon = np.array([0.1, 0.25, 0.5, 1.0, 2.0]) * mean_ttf
    cdf = outage.cdf(horizon)
    print("\nP(total outage before t):")
    for t, p in zip(horizon, cdf):
        print(f"  t = {t:8.1f}   P = {p:.6f}")

    shift = 0.1 * mean_ttf
    print(f"\nreliability over a shift of {shift:.0f} time units: "
          f"{1.0 - outage.cdf([shift])[0]:.6f}")
    print(f"time by which 1% of clusters have failed completely: "
          f"{outage.quantile(0.01, 1e-3 * mean_ttf, mean_ttf):.1f}")
    print(f"time by which 50% have failed completely           : "
          f"{outage.quantile(0.50, 1e-3 * mean_ttf, 10 * mean_ttf):.1f}\n")

    # ------------------------------------------------------------------
    # 2. The same tail by simulation — the contrast the paper draws.
    # ------------------------------------------------------------------
    budget = 400
    simulator = PetriSimulator(net)
    samples = simulator.sample_passage_times(all_down, n_samples=budget, rng=7)
    early_t = 0.1 * mean_ttf
    observed = int(np.sum(samples <= early_t))
    analytic_p = outage.cdf([early_t])[0]
    print(f"simulation with {budget} replications:")
    print(f"  replications observing an outage before t={early_t:.0f}: {observed}")
    print(f"  implied estimate: {observed / budget:.4f}  vs analytic {analytic_p:.6f}")
    print("  -> estimating this probability to two significant figures by "
          "simulation would need orders of magnitude more replications, "
          "while every analytic evaluation above costs the same fixed amount "
          "of work.\n")

    # ------------------------------------------------------------------
    # 3. Long-run behaviour for context.
    # ------------------------------------------------------------------
    pi = smp_steady_state(kernel)
    p_degraded = sum(
        pi[i] for i in range(graph.n_states) if graph.view(i)["failed"] > 0
    )
    print(f"long-run fraction of time with at least one failed server: {p_degraded:.4f}")


if __name__ == "__main__":
    main()
