#!/usr/bin/env python3
"""Demo of the analysis service: registry, coalescing, tiered caching.

Starts the HTTP analysis server in-process and drives it through the public
api facade (``Model`` -> ``PassageQuery`` -> ``engine="remote"``), showing
what the serving layer buys over one-shot runs:

1. the first (cold) query pays state-space exploration + s-point evaluation,
2. a repeated (warm) query answers entirely from the in-memory cache,
3. eight concurrent clients asking for the same measure trigger exactly one
   evaluation per s-point — the coalescing counters prove it.

Run:  python examples/service_demo.py
"""
from __future__ import annotations

import threading
import time

import numpy as np

from repro.api import Model, RemoteEngine
from repro.models import SCALED_CONFIGURATIONS, voting_spec_text
from repro.service import AnalysisService, ServiceClient, create_server


def main() -> None:
    service = AnalysisService()
    server = create_server(service, port=0)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{port}"
    client = ServiceClient(url)          # raw client, used for /v1/stats
    engine = RemoteEngine(url=url)       # api engine, used for the queries
    print(f"analysis server listening on {url}")

    spec = voting_spec_text(SCALED_CONFIGURATIONS["small"])
    info = client.register_model(spec, name="voting-small")
    print(f"registered voting model {info['model']}: {info['states']} states, "
          f"built in {info['build_seconds']:.2f}s")

    model = Model.from_digest(info["model"])
    query = (
        model.passage("p1 == CC", "p2 == CC")
        .density([2.0, 5.0, 10.0, 20.0, 40.0])
        .cdf()
    )

    # ------------------------------------------------------------- 1. cold
    start = time.perf_counter()
    result = query.run(engine)
    cold_ms = (time.perf_counter() - start) * 1e3
    print(f"\ncold query : {cold_ms:7.1f} ms "
          f"({result.statistics['s_points_computed']} s-points evaluated)")
    print("  t      f(t)        F(t)")
    for t, f, F in zip(result.t_points, result.density, result.cdf):
        print(f"  {t:5.1f}  {f:.6f}  {F:.6f}")

    # ------------------------------------------------------------- 2. warm
    start = time.perf_counter()
    warm = query.run(engine)
    warm_ms = (time.perf_counter() - start) * 1e3
    stats = warm.statistics
    print(f"\nwarm query : {warm_ms:7.1f} ms "
          f"({stats['s_points_computed']} evaluated, "
          f"{stats['s_points_from_memory']} from memory) — "
          f"{cold_ms / max(warm_ms, 1e-9):.0f}x faster")

    # ------------------------------------- 3. concurrent, fresh t-grid
    fresh = query.density([3.0, 6.0, 12.0, 24.0, 48.0])
    replies = []

    def worker():
        replies.append(fresh.run(engine))

    before = client.stats()["scheduler"]
    threads = [threading.Thread(target=worker) for _ in range(8)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed_ms = (time.perf_counter() - start) * 1e3
    after = client.stats()["scheduler"]
    evaluated = after["points_evaluated"] - before["points_evaluated"]
    coalesced = after["points_coalesced"] - before["points_coalesced"]
    print(f"\n8 concurrent clients, new t-grid: {elapsed_ms:.1f} ms total, "
          f"{evaluated} s-points evaluated once, {coalesced} coalesced "
          f"across the other requests")
    assert all(np.array_equal(r.density, replies[0].density) for r in replies)

    totals = client.stats()
    print(f"\nserver totals: {totals['queries']['total']} queries, "
          f"{totals['scheduler']['points_evaluated']} points evaluated, "
          f"{totals['cache']['memory_hits']} memory hits, "
          f"{totals['scheduler']['points_coalesced']} coalesced")
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
