#!/usr/bin/env python3
"""The paper's distributed voting system: passage times, quantiles, transients.

This example reproduces, on a reduced configuration, the measures reported in
Section 5.3 of the paper:

* the density of the time to process all voters (Fig. 4),
* its cumulative distribution and a reliability quantile (Fig. 5),
* the time to reach a failure mode — all polling units or all central voting
  units down (Fig. 6),
* the transient probability that a given number of voters have voted,
  converging to its steady-state value (Fig. 7).

The analytic results are cross-validated against simulation of the same
SM-SPN, exactly as in the paper.

Run:  python examples/voting_analysis.py [tiny|small|medium]
"""
from __future__ import annotations

import sys

import numpy as np

from repro.models import (
    SCALED_CONFIGURATIONS,
    all_voted_predicate,
    build_voting_graph,
    build_voting_net,
    failure_mode_predicate,
    initial_marking_predicate,
    voters_done_predicate,
)
from repro.petri import passage_solver, transient_solver
from repro.simulation import PetriSimulator, empirical_cdf


def main(config_name: str = "tiny") -> None:
    params = SCALED_CONFIGURATIONS[config_name]
    print(f"Voting system configuration '{config_name}': {params.label}")

    graph = build_voting_graph(params)
    print(f"reachable states: {graph.n_states}, transitions: {graph.n_edges}\n")

    # ------------------------------------------------------------------
    # Passage: all voters processed (Fig. 4 / Fig. 5 analogue).
    # ------------------------------------------------------------------
    voters = passage_solver(
        graph, initial_marking_predicate(params), all_voted_predicate(params)
    )
    mean = voters.mean()
    t_points = np.linspace(0.4 * mean, 1.8 * mean, 15)
    density = voters.density(t_points)
    cdf = voters.cdf(t_points)

    print(f"Passage: all {params.voters} voters processed")
    print(f"{'t':>8} {'f(t)':>12} {'F(t)':>10}")
    for t, f, F in zip(t_points, density, cdf):
        print(f"{t:8.2f} {f:12.6f} {F:10.4f}")
    print(f"mean completion time: {mean:.2f}")
    q985 = voters.quantile(0.9858, 0.2 * mean, 6.0 * mean)
    print(f"P(all voters processed within {q985:.1f}s) = 0.9858   "
          "(the paper's Fig. 5 quantile style)\n")

    # ------------------------------------------------------------------
    # Simulation overlay (the validation of Fig. 4).
    # ------------------------------------------------------------------
    simulator = PetriSimulator(build_voting_net(params))
    samples = simulator.sample_passage_times(
        all_voted_predicate(params), n_samples=3000, rng=2003
    )
    sim_cdf = empirical_cdf(samples, t_points)
    worst = float(np.max(np.abs(sim_cdf - cdf)))
    print(f"simulation cross-check on {len(samples)} replications: "
          f"max |F_analytic - F_simulated| = {worst:.3f}\n")

    # ------------------------------------------------------------------
    # Passage into a failure mode (Fig. 6 analogue).
    # ------------------------------------------------------------------
    failure = passage_solver(
        graph, initial_marking_predicate(params), failure_mode_predicate(params)
    )
    fail_mean = failure.mean()
    fail_t = np.linspace(0.1 * fail_mean, 2.0 * fail_mean, 8)
    fail_density = failure.density(fail_t)
    print("Passage: fully-operational system -> complete failure of either pool")
    print(f"{'t':>10} {'f(t)':>14}")
    for t, f in zip(fail_t, fail_density):
        print(f"{t:10.1f} {f:14.8f}")
    print(f"mean time to failure mode: {fail_mean:.1f} "
          f"({fail_mean / mean:.1f}x the voting passage — a rare event, "
          "which is why the paper needed the analytic method for Fig. 6)\n")

    # ------------------------------------------------------------------
    # Transient distribution (Fig. 7 analogue).
    # ------------------------------------------------------------------
    count = max(2, params.voters // 4)
    transient = transient_solver(
        graph, initial_marking_predicate(params), voters_done_predicate(count)
    )
    steady = transient.steady_state()
    ts = np.linspace(0.5, 3.0 * mean, 12)
    probs = transient.probability(ts)
    print(f"Transient: P(at least {count} voters have voted by time t)")
    print(f"{'t':>8} {'P':>10}")
    for t, p in zip(ts, probs):
        print(f"{t:8.2f} {p:10.4f}")
    print(f"steady-state value: {steady:.4f} "
          f"(transient at t={ts[-1]:.1f} is {probs[-1]:.4f})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
