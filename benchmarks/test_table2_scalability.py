"""Table 2 — time, speedup and efficiency of the distributed pipeline.

The paper measures the wall-clock time of one passage-time analysis (5
t-points under Euler inversion, i.e. 165 s-point evaluations, on voting
system 1) with 1, 8, 16 and 32 slave processors and reports near-linear
speedup (efficiency 1.000 / 0.965 / 0.876 / 0.712).

That cluster does not exist here, so the experiment is reproduced in two
parts (see DESIGN.md, substitutions):

* a *real* parallel run on this machine's cores via the multiprocessing
  backend (limited to the available CPU count),
* the *simulated cluster* replaying the measured per-s-point compute times on
  1/8/16/32 slaves with master-dispatch and network overheads scaled to the
  paper's compute-to-communication ratio — this regenerates the shape of
  Table 2.

The timed kernel is the serial 165-task evaluation that provides both the
baseline time and the per-task durations.
"""
from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.jobs import PassageTimeJob
from repro.distributed import (
    DistributedPipeline,
    MultiprocessingBackend,
    SerialBackend,
    scalability_table,
)
from repro.laplace import EulerInverter
from repro.models import SCALED_CONFIGURATIONS, all_voted_predicate, initial_marking_predicate
from repro.smp import source_weights

PARAMS = SCALED_CONFIGURATIONS["medium"]
SLAVE_COUNTS = (1, 8, 16, 32)
PAPER_ROWS = [
    (1, 549.08, 1.00, 1.000),
    (8, 71.11, 7.72, 0.965),
    (16, 39.16, 14.02, 0.876),
    (32, 24.10, 22.79, 0.712),
]


@pytest.fixture(scope="module")
def job(voting_graph_medium, voting_kernel_medium):
    sources = voting_graph_medium.states_where(initial_marking_predicate(PARAMS))
    targets = voting_graph_medium.states_where(all_voted_predicate(PARAMS))
    return PassageTimeJob(
        kernel=voting_kernel_medium,
        alpha=source_weights(voting_kernel_medium, sources),
        targets=targets,
    )


@pytest.fixture(scope="module")
def t_points(voting_graph_medium):
    # 5 t-points, as in the paper's Table 2 run (165 s-point evaluations).
    return np.linspace(18.0, 45.0, 5)


@pytest.mark.benchmark(group="table2-scalability")
def test_table2_scalability(benchmark, job, t_points, report):
    serial = SerialBackend(record_timings=True)
    pipeline = DistributedPipeline(job, backend=serial)

    def serial_run():
        return pipeline.density(t_points)

    benchmark.pedantic(serial_run, rounds=1, iterations=1)
    durations = list(serial.task_durations)
    assert len(durations) == len(EulerInverter().required_s_points(t_points)) == 165

    rows = scalability_table(durations, SLAVE_COUNTS)

    # Real parallelism on the cores that are actually available here.
    workers = max(1, min(4, os.cpu_count() or 1))
    mp_backend = MultiprocessingBackend(processes=workers, chunk_size=8)
    mp_pipeline = DistributedPipeline(job, backend=mp_backend)
    mp_pipeline.density(t_points)
    real_parallel_seconds = mp_backend.last_wall_clock

    lines = [
        "Table 2 — scalability of the s-point work-queue pipeline",
        f"workload: 5 t-points x 33 Euler evaluations = {len(durations)} s-point tasks "
        f"on the {PARAMS.label} voting model ({job.kernel.n_states} states)",
        "",
        "simulated cluster (overheads scaled to the paper's compute/comms ratio):",
        f"{'slaves':>7} {'time (s)':>10} {'speedup':>9} {'efficiency':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.slaves:7d} {row.time_seconds:10.3f} {row.speedup:9.2f} {row.efficiency:11.3f}"
        )
    lines += [
        "",
        "paper's Table 2 (2 GHz P4 slaves, 100 Mbit Ethernet, system 1):",
        f"{'slaves':>7} {'time (s)':>10} {'speedup':>9} {'efficiency':>11}",
    ]
    for slaves, seconds, speedup, efficiency in PAPER_ROWS:
        lines.append(f"{slaves:7d} {seconds:10.2f} {speedup:9.2f} {efficiency:11.3f}")
    lines += [
        "",
        f"real multiprocessing run on this machine ({workers} workers): "
        f"{real_parallel_seconds:.2f}s wall-clock vs {sum(durations):.2f}s serial compute",
    ]
    report("table2_scalability", lines)

    # --- Shape assertions -------------------------------------------------
    efficiencies = {row.slaves: row.efficiency for row in rows}
    speedups = {row.slaves: row.speedup for row in rows}
    assert speedups[1] == pytest.approx(1.0)
    # Monotone speedup, decaying efficiency.
    assert speedups[8] > 6.0 and speedups[16] > speedups[8] and speedups[32] > speedups[16]
    assert efficiencies[8] > 0.9
    assert efficiencies[32] < efficiencies[16] < efficiencies[8] <= 1.0 + 1e-9
    assert efficiencies[32] > 0.5
    # Paper comparison: per-row efficiency within a modest absolute band.
    for slaves, _, _, paper_eff in PAPER_ROWS:
        assert efficiencies[slaves] == pytest.approx(paper_eff, abs=0.2)

    benchmark.extra_info["task_count"] = len(durations)
    benchmark.extra_info["efficiency_32"] = float(efficiencies[32])
    benchmark.extra_info["real_parallel_seconds"] = float(real_parallel_seconds)
