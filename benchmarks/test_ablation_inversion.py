"""Ablation A1 — Euler vs. Laguerre inversion (Section 4's algorithm choice).

The paper uses the Euler algorithm when the density (or its derivatives)
contains discontinuities — e.g. models with deterministic or uniform firing
times — and the Laguerre algorithm for smooth densities, where its 400-point
s-grid is shared across all t-points.  This ablation quantifies that
trade-off on closed-form densities where the truth is known exactly, and on a
voting-model passage transform.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential, Gamma, Mixture, Uniform
from repro.laplace import EulerInverter, LaguerreInverter
from repro.models import SCALED_CONFIGURATIONS, all_voted_predicate, initial_marking_predicate
from repro.petri import passage_solver

SMOOTH = Mixture([Erlang(1.5, 3), Gamma(2.5, 0.8), Exponential(0.7)], [0.4, 0.4, 0.2])
DISCONTINUOUS = Mixture([Uniform(0.5, 2.0), Uniform(2.5, 4.0)], [0.6, 0.4])
T_GRID = np.linspace(0.4, 6.0, 15)


@pytest.mark.benchmark(group="ablation-inversion")
@pytest.mark.parametrize("method", ["euler", "laguerre"])
def test_smooth_density_accuracy(benchmark, method, report):
    """Both algorithms recover a smooth density; Laguerre reuses one grid."""
    inverter = EulerInverter() if method == "euler" else LaguerreInverter()

    recovered = benchmark.pedantic(
        inverter.invert, args=(SMOOTH.lst, T_GRID), rounds=3, iterations=1
    )
    error = float(np.max(np.abs(recovered - SMOOTH.pdf(T_GRID))))
    evaluations = len(inverter.required_s_points(T_GRID))

    _SMOOTH_RESULTS[method] = (error, evaluations)
    benchmark.extra_info["max_abs_error"] = error
    benchmark.extra_info["s_point_evaluations"] = evaluations
    assert error < 1e-4

    if len(_SMOOTH_RESULTS) == 2:
        lines = [
            "Ablation A1a — smooth density (Erlang/Gamma/Exponential mixture)",
            f"{'method':>10} {'max |error|':>14} {'s-point evals':>14}",
        ]
        for name, (err, evals) in _SMOOTH_RESULTS.items():
            lines.append(f"{name:>10} {err:14.3e} {evals:14d}")
        lines.append("")
        lines.append("Laguerre's grid is t-point independent (400 evaluations regardless of m),")
        lines.append("Euler needs 33 evaluations per t-point but tolerates discontinuities.")
        report("ablation_a1_smooth", lines)


_SMOOTH_RESULTS: dict[str, tuple] = {}


@pytest.mark.benchmark(group="ablation-inversion")
def test_discontinuous_density_needs_euler(benchmark, report):
    """On a discontinuous density the Euler method stays usable while the
    Laguerre expansion degrades badly — the paper's stated reason for
    supporting both."""
    euler = EulerInverter()
    laguerre = LaguerreInverter()

    euler_recovered = benchmark.pedantic(
        euler.invert, args=(DISCONTINUOUS.lst, T_GRID), rounds=1, iterations=1
    )
    laguerre_recovered = laguerre.invert(DISCONTINUOUS.lst, T_GRID)
    truth = DISCONTINUOUS.pdf(T_GRID)

    # Compare away from the jump points, where the truth is well-defined.
    mask = np.array([
        all(abs(t - edge) > 0.3 for edge in (0.5, 2.0, 2.5, 4.0)) for t in T_GRID
    ])
    euler_err = float(np.max(np.abs(euler_recovered[mask] - truth[mask])))
    laguerre_err = float(np.max(np.abs(laguerre_recovered[mask] - truth[mask])))

    lines = [
        "Ablation A1b — discontinuous density (mixture of two uniforms)",
        f"{'method':>10} {'max |error| away from jumps':>28}",
        f"{'euler':>10} {euler_err:28.4f}",
        f"{'laguerre':>10} {laguerre_err:28.4f}",
    ]
    report("ablation_a1_discontinuous", lines)

    assert euler_err < 0.05
    assert laguerre_err > euler_err
    benchmark.extra_info["euler_error"] = euler_err
    benchmark.extra_info["laguerre_error"] = laguerre_err


@pytest.mark.benchmark(group="ablation-inversion")
def test_voting_passage_euler_vs_laguerre(benchmark, voting_graph_small, report):
    """On the voting model (uniform + deterministic-style firing times) the two
    algorithms agree on the bulk of the distribution; Euler is the default."""
    params = SCALED_CONFIGURATIONS["small"]
    solver_euler = passage_solver(
        voting_graph_small, initial_marking_predicate(params), all_voted_predicate(params)
    )
    solver_laguerre = passage_solver(
        voting_graph_small,
        initial_marking_predicate(params),
        all_voted_predicate(params),
        inversion="laguerre",
        inverter_options={"time_scale": 4.0},
    )
    mean = solver_euler.mean()
    ts = np.linspace(0.6 * mean, 1.6 * mean, 7)

    euler_density = benchmark.pedantic(
        solver_euler.density, args=(ts,), rounds=1, iterations=1
    )
    laguerre_density = solver_laguerre.density(ts)

    lines = [
        f"Ablation A1c — voting model passage density ({params.label})",
        f"{'t':>8} {'euler f(t)':>12} {'laguerre f(t)':>14}",
    ]
    lines += [
        f"{t:8.2f} {e:12.6f} {l:14.6f}" for t, e, l in zip(ts, euler_density, laguerre_density)
    ]
    report("ablation_a1_voting", lines)

    assert np.max(np.abs(euler_density - laguerre_density)) < 0.02
