"""Fig. 5 — cumulative passage-time distribution and reliability quantile.

The paper inverts ``L(s)/s`` to obtain the cumulative distribution of the
voter-processing passage and reads off a response-time quantile
("P(system 5 processes 175 voters in under 440s) = 0.9858").  This benchmark
regenerates the CDF curve for the system-0-sized configuration, extracts the
analogous 0.9858 quantile, and checks the defining properties of the curve
(monotone, 0 at small t, 1 in the limit, consistent with the density of
Fig. 4).

The timed kernel is the CDF computation over the full t-grid.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import SCALED_CONFIGURATIONS, all_voted_predicate, initial_marking_predicate
from repro.petri import passage_solver

PARAMS = SCALED_CONFIGURATIONS["medium"]


@pytest.fixture(scope="module")
def solver(voting_graph_medium):
    return passage_solver(
        voting_graph_medium, initial_marking_predicate(PARAMS), all_voted_predicate(PARAMS)
    )


@pytest.mark.benchmark(group="fig5-passage-cdf")
def test_fig5_cumulative_distribution_and_quantile(benchmark, solver, report):
    mean = solver.mean()
    t_points = np.linspace(0.4 * mean, 2.2 * mean, 19)

    cdf = benchmark.pedantic(solver.cdf, args=(t_points,), rounds=1, iterations=1)

    # The paper's headline quantile has probability 0.9858; reproduce the
    # equivalent statement for our configuration.
    q_level = 0.9858
    q_time = solver.quantile(q_level, 0.4 * mean, 6.0 * mean)

    lines = [
        f"Fig. 5 — cumulative distribution of the voter-processing passage ({PARAMS.label})",
        f"{'t':>9} {'F(t)':>10}",
    ]
    lines += [f"{t:9.2f} {F:10.4f}" for t, F in zip(t_points, cdf)]
    lines += [
        "",
        f"reliability quantile: P(all {PARAMS.voters} voters processed in under "
        f"{q_time:.1f}s) = {q_level}",
        "(paper, system 5: P(175 voters processed in under 440s) = 0.9858)",
    ]
    report("fig5_passage_cdf", lines)

    # --- Shape assertions -------------------------------------------------
    assert np.all(np.diff(cdf) > -1e-3)          # monotone (up to inversion noise)
    assert cdf[0] < 0.35                          # little mass well below the mean
    assert cdf[-1] > 0.95                         # most mass within ~2x the mean
    assert np.all(cdf > -1e-4) and np.all(cdf < 1.0 + 1e-3)   # inversion noise ~1e-5
    # Quantile consistency with the CDF itself.
    assert solver.cdf([q_time])[0] == pytest.approx(q_level, abs=1e-3)
    # Consistency with the density (fundamental theorem of calculus, coarse grid).
    density = solver.density(t_points)
    implied = np.concatenate([[cdf[0]], cdf[0] + np.cumsum(
        0.5 * (density[1:] + density[:-1]) * np.diff(t_points)
    )])
    assert np.max(np.abs(implied - cdf)) < 0.05

    benchmark.extra_info["quantile_time"] = float(q_time)
    benchmark.extra_info["quantile_level"] = q_level
