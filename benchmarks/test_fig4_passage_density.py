"""Fig. 4 — passage-time density for processing all voters, analytic vs simulation.

The paper's Fig. 4 overlays the analytic density of the time to process 175
voters in system 5 (1.1 million states) with a simulation of the same model
and observes (i) close agreement and (ii) a roughly Normal shape.  This
benchmark regenerates both curves for the system-0-sized configuration
(CC=18, MM=6, NN=3): the shape claims — agreement within simulation noise and
a unimodal, approximately Normal density around the mean — are asserted.

The timed kernel is the full analytic density computation (s-point
evaluations + Euler inversion).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    SCALED_CONFIGURATIONS,
    all_voted_predicate,
    build_voting_net,
    initial_marking_predicate,
)
from repro.petri import passage_solver
from repro.simulation import PetriSimulator, density_histogram, empirical_cdf

PARAMS = SCALED_CONFIGURATIONS["medium"]   # the paper's system 0 parameters
N_REPLICATIONS = 1_500


@pytest.fixture(scope="module")
def solver(voting_graph_medium):
    return passage_solver(
        voting_graph_medium, initial_marking_predicate(PARAMS), all_voted_predicate(PARAMS)
    )


@pytest.fixture(scope="module")
def simulation_samples():
    simulator = PetriSimulator(build_voting_net(PARAMS))
    return simulator.sample_passage_times(
        all_voted_predicate(PARAMS), n_samples=N_REPLICATIONS, rng=20030422
    )


@pytest.mark.benchmark(group="fig4-passage-density")
def test_fig4_density_analytic_vs_simulation(benchmark, solver, simulation_samples, report):
    mean = solver.mean()
    t_points = np.linspace(0.55 * mean, 1.7 * mean, 16)

    density = benchmark.pedantic(solver.density, args=(t_points,), rounds=1, iterations=1)
    sim_centres, sim_density, sim_stderr = density_histogram(
        simulation_samples, bins=16, t_range=(0.55 * mean, 1.7 * mean)
    )

    lines = [
        "Fig. 4 — density of the time to process all voters "
        f"({PARAMS.label}, {N_REPLICATIONS} simulation replications)",
        f"mean passage time (analytic): {mean:.2f}",
        f"{'t':>9} {'analytic f(t)':>14} {'simulated f(t)':>15} {'sim std-err':>12}",
    ]
    sim_lookup = np.interp(t_points, sim_centres, sim_density)
    err_lookup = np.interp(t_points, sim_centres, sim_stderr)
    for t, fa, fs, se in zip(t_points, density, sim_lookup, err_lookup):
        lines.append(f"{t:9.2f} {fa:14.6f} {fs:15.6f} {se:12.6f}")
    report("fig4_passage_density", lines)

    # --- Shape assertions -------------------------------------------------
    # 1. agreement with simulation at the distribution level (CDF within
    #    a few simulation standard errors).
    probe = np.quantile(simulation_samples, [0.15, 0.4, 0.6, 0.85])
    analytic_cdf = solver.cdf(probe)
    simulated_cdf = empirical_cdf(simulation_samples, probe)
    assert np.max(np.abs(analytic_cdf - simulated_cdf)) < 0.05

    # 2. unimodal, roughly central peak (the paper notes the density "appears
    #    close to Normal").
    assert np.all(density >= -1e-6)
    peak = t_points[int(np.argmax(density))]
    assert 0.7 * mean < peak < 1.3 * mean
    finite_mass = np.trapezoid(density, t_points)
    assert 0.8 < finite_mass <= 1.05

    benchmark.extra_info["mean_passage_time"] = float(mean)
    benchmark.extra_info["states"] = solver.kernel.n_states
