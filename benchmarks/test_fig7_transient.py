"""Fig. 7 — transient probability of a voter-progress condition vs its steady state.

The paper's Fig. 7 plots the transient distribution for the transit of five
voters from the initial marking to place p2 in system 0, together with the
steady-state value it converges to as t -> infinity.

Transient analysis is the most expensive measure in the paper's framework —
Eq. (7) needs one passage-time vector computation per *target state* per
s-point — so the default benchmark uses the tiny configuration (the same code
path; see DESIGN.md).  Both claims of the figure are asserted: the transient
curve approaches the independently computed steady-state value, and the early
transient differs substantially from it (i.e. the transient analysis carries
information the steady state cannot provide).

The timed kernel is the transient-probability computation over the t-grid.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    SCALED_CONFIGURATIONS,
    initial_marking_predicate,
    voters_done_predicate,
)
from repro.petri import transient_solver

PARAMS = SCALED_CONFIGURATIONS["tiny"]
VOTERS_DONE = 2   # the "transit of k voters to p2" condition


@pytest.fixture(scope="module")
def solver(voting_graph_tiny):
    return transient_solver(
        voting_graph_tiny,
        initial_marking_predicate(PARAMS),
        voters_done_predicate(VOTERS_DONE),
        method="direct",
    )


@pytest.mark.benchmark(group="fig7-transient")
def test_fig7_transient_vs_steady_state(benchmark, solver, report):
    steady = solver.steady_state()
    mean_cycle = 10.0  # roughly one voting round for the tiny configuration
    t_points = np.concatenate([
        np.linspace(0.5, 3 * mean_cycle, 10),
        [10 * mean_cycle, 50 * mean_cycle, 200 * mean_cycle],
    ])

    probabilities = benchmark.pedantic(
        solver.probability, args=(t_points,), rounds=1, iterations=1
    )

    lines = [
        f"Fig. 7 — transient P(at least {VOTERS_DONE} voters have voted by t) "
        f"({PARAMS.label})",
        f"steady-state value: {steady:.4f}",
        f"{'t':>10} {'P(t)':>10}",
    ]
    lines += [f"{t:10.1f} {p:10.4f}" for t, p in zip(t_points, probabilities)]
    lines.append("")
    lines.append(
        f"|P(t_max) - steady state| = {abs(probabilities[-1] - steady):.4f}"
    )
    report("fig7_transient", lines)

    # --- Shape assertions -------------------------------------------------
    assert 0.0 < steady < 1.0
    # The transient converges to the steady-state value ...
    assert probabilities[-1] == pytest.approx(steady, abs=0.03)
    # ... and successive late-time points get closer to it ...
    gaps = np.abs(probabilities[-3:] - steady)
    assert gaps[2] <= gaps[0] + 1e-3
    # ... while the early transient is far from the long-run value.
    assert abs(probabilities[0] - steady) > 0.2
    # Probabilities are valid throughout.
    assert np.all(probabilities > -1e-6) and np.all(probabilities < 1.0 + 1e-6)

    benchmark.extra_info["steady_state"] = float(steady)
    benchmark.extra_info["target_states"] = len(solver.targets)
