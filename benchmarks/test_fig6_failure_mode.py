"""Fig. 6 — density of the time to complete failure, analytic vs simulation.

The paper computes the passage from the fully operational initial marking to a
failure mode (all polling units failed or all central voting units failed) for
system 0 (2 061 states), and notes that the probabilities are so small that a
vanilla simulator struggles to register the distribution at all — the
motivating example for analytic rare-event analysis.

This benchmark regenerates the analytic density on the same (CC=18, MM=6,
NN=3) configuration, overlays a modest-budget simulation, and asserts the
qualitative claims: the failure passage is far longer/rarer than the voting
passage, the analytic curve is a proper density, and the simulation (where it
has samples at all) agrees at the CDF level.

The timed kernel is the analytic density computation.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    SCALED_CONFIGURATIONS,
    all_voted_predicate,
    build_voting_net,
    failure_mode_predicate,
    initial_marking_predicate,
)
from repro.petri import passage_solver
from repro.simulation import PetriSimulator, empirical_cdf

PARAMS = SCALED_CONFIGURATIONS["medium"]
N_REPLICATIONS = 300    # deliberately modest: the point of Fig. 6 is that
                        # simulation needs rare-event machinery here


@pytest.fixture(scope="module")
def failure_solver(voting_graph_medium):
    return passage_solver(
        voting_graph_medium, initial_marking_predicate(PARAMS), failure_mode_predicate(PARAMS)
    )


@pytest.fixture(scope="module")
def voting_solver(voting_graph_medium):
    return passage_solver(
        voting_graph_medium, initial_marking_predicate(PARAMS), all_voted_predicate(PARAMS)
    )


@pytest.mark.benchmark(group="fig6-failure-mode")
def test_fig6_failure_mode_density(benchmark, failure_solver, voting_solver, report):
    fail_mean = failure_solver.mean()
    t_points = np.linspace(0.05 * fail_mean, 2.5 * fail_mean, 14)

    density = benchmark.pedantic(
        failure_solver.density, args=(t_points,), rounds=1, iterations=1
    )

    simulator = PetriSimulator(build_voting_net(PARAMS))
    samples = simulator.sample_passage_times(
        failure_mode_predicate(PARAMS), n_samples=N_REPLICATIONS, rng=61
    )

    lines = [
        f"Fig. 6 — density of the time to reach a failure mode ({PARAMS.label})",
        f"mean time to failure mode (analytic): {fail_mean:.1f}",
        f"mean voter-processing passage       : {voting_solver.mean():.1f}",
        f"{'t':>10} {'analytic f(t)':>15}",
    ]
    lines += [f"{t:10.1f} {f:15.8f}" for t, f in zip(t_points, density)]
    probe = np.quantile(samples, [0.25, 0.5, 0.75])
    analytic_cdf = failure_solver.cdf(probe)
    simulated_cdf = empirical_cdf(samples, probe)
    lines += [
        "",
        f"simulation cross-check ({N_REPLICATIONS} replications):",
        f"{'t':>10} {'analytic F(t)':>15} {'simulated F(t)':>15}",
    ]
    lines += [
        f"{t:10.1f} {a:15.4f} {s:15.4f}"
        for t, a, s in zip(probe, analytic_cdf, simulated_cdf)
    ]
    report("fig6_failure_mode", lines)

    # --- Shape assertions -------------------------------------------------
    # 1. The failure passage is a genuinely rarer/longer event than the
    #    voting passage (the reason Fig. 6 needed the analytic method).
    assert fail_mean > 5.0 * voting_solver.mean()
    # 2. The density is non-negative with its mass spread over a long range,
    #    and the probability of failing within one voting passage is small.
    assert np.all(density >= -1e-6)
    early = failure_solver.cdf([voting_solver.mean()])[0]
    assert early < 0.2
    # 3. Where the simulation does have mass, the two agree.
    assert np.max(np.abs(analytic_cdf - simulated_cdf)) < 0.12

    benchmark.extra_info["mean_time_to_failure"] = float(fail_mean)
    benchmark.extra_info["replications"] = N_REPLICATIONS
