"""Load test — warm-cache throughput of the analysis server under concurrency.

The serving layer exists to amortise model building and transform evaluation
across queries, so the number that matters is sustained *warm* throughput:
with the registry and result cache populated, how many HTTP passage/transient
queries per second does the server answer for a pool of concurrent clients?

The workload is deliberately mixed — passage density+CDF on two different
t-grids plus a transient measure, round-robin across 8 client threads over
the voting model — so requests exercise the registry, the per-measure cache
entries and the JSON transport rather than one hot dictionary entry.  The
queries are issued through the public api facade (``repro.api.Model`` +
``RemoteEngine``), the same path the CLI's ``query`` sub-commands use.

Acceptance floor (ISSUE 2): >= 50 warm queries/sec with 8 concurrent clients.
"""
from __future__ import annotations

import threading
import time

import pytest

from repro.api import Model, RemoteEngine
from repro.models import SCALED_CONFIGURATIONS, voting_spec_text
from repro.service import AnalysisService, ServiceClient, create_server

N_CLIENTS = 8
QUERIES_PER_CLIENT = 40
THROUGHPUT_FLOOR_QPS = 50.0


@pytest.fixture(scope="module")
def served_client():
    service = AnalysisService()
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(f"http://127.0.0.1:{server.server_address[1]}"), service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _workload(digest: str) -> list:
    """The mixed per-client query cycle (all warm after the priming pass)."""
    model = Model.from_digest(digest)
    return [
        model.passage("p1 == CC", "p2 == CC").density([2.0, 5.0, 10.0, 20.0]).cdf(),
        model.passage("p1 == CC", "p7 > 0").density([1.0, 3.0, 9.0]).cdf(),
        model.transient("p1 == CC", "p2 >= 1").probability([1.0, 5.0, 25.0]),
    ]


def test_warm_cache_throughput(served_client, report):
    client, service = served_client
    spec = voting_spec_text(SCALED_CONFIGURATIONS["tiny"])

    # ------------------------------------------------------------- cold pass
    t0 = time.perf_counter()
    model = client.register_model(spec, name="voting-tiny")["model"]
    build_seconds = time.perf_counter() - t0
    engine = RemoteEngine(client=client)
    workload = _workload(model)
    cold_ms = []
    for query in workload:
        t0 = time.perf_counter()
        result = query.run(engine)
        cold_ms.append((time.perf_counter() - t0) * 1e3)
        assert result.statistics["s_points_computed"] > 0

    # All later queries must be answered without evaluating anything.
    evaluated_after_priming = service.scheduler.points_evaluated

    # ------------------------------------------------------------- warm pass
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client_loop(offset: int) -> None:
        local: list[float] = []
        try:
            for i in range(QUERIES_PER_CLIENT):
                query = workload[(offset + i) % len(workload)]
                t0 = time.perf_counter()
                query.run(engine)
                local.append((time.perf_counter() - t0) * 1e3)
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=client_loop, args=(i,)) for i in range(N_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start

    assert not errors
    n_queries = N_CLIENTS * QUERIES_PER_CLIENT
    assert len(latencies) == n_queries
    qps = n_queries / elapsed
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[int(len(latencies) * 0.99) - 1]

    # Warm queries evaluated no s-points and rebuilt no models.
    assert service.scheduler.points_evaluated == evaluated_after_priming
    assert service.registry.models_built == 1

    stats = service.stats()
    report("service_load", [
        "Analysis-server warm-cache load test (HTTP, ThreadingHTTPServer)",
        f"model: voting 'tiny' ({stats['registry']['models']} registered, "
        f"built once in {build_seconds*1e3:.1f} ms including registration RTT)",
        f"workload: {len(workload)} measures (2 passage density+CDF grids + 1 transient), "
        f"{N_CLIENTS} concurrent clients x {QUERIES_PER_CLIENT} queries",
        "",
        f"cold per-measure latency : {', '.join(f'{ms:.1f} ms' for ms in cold_ms)}",
        f"warm throughput          : {qps:.0f} queries/sec "
        f"({n_queries} queries in {elapsed:.2f} s)",
        f"warm latency             : p50 {p50:.2f} ms, p99 {p99:.2f} ms",
        f"s-points evaluated       : {stats['scheduler']['points_evaluated']} total "
        f"(warm pass: 0), memory hits {stats['cache']['memory_hits']}",
        f"acceptance floor         : {THROUGHPUT_FLOOR_QPS:.0f} qps -> "
        f"{'PASS' if qps >= THROUGHPUT_FLOOR_QPS else 'FAIL'}",
    ])
    assert qps >= THROUGHPUT_FLOOR_QPS
