"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Because pytest
captures stdout, each benchmark also writes its reproduced rows/series to a
text file under ``benchmarks/results/`` so the numbers survive a plain
``pytest benchmarks/ --benchmark-only`` run; EXPERIMENTS.md summarises them.
"""
from __future__ import annotations

from pathlib import Path

import pytest

from repro.models import SCALED_CONFIGURATIONS, build_voting_graph
from repro.petri import build_kernel

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """A callable writing (and echoing) a named experiment report."""

    def _write(name: str, lines) -> str:
        text = "\n".join(str(line) for line in lines) + "\n"
        (results_dir / f"{name}.txt").write_text(text)
        print(f"\n===== {name} =====\n{text}")
        return text

    return _write


@pytest.fixture(scope="session")
def voting_graph_tiny():
    return build_voting_graph(SCALED_CONFIGURATIONS["tiny"])


@pytest.fixture(scope="session")
def voting_graph_small():
    return build_voting_graph(SCALED_CONFIGURATIONS["small"])


@pytest.fixture(scope="session")
def voting_graph_medium():
    """The paper's system 0 parameters (CC=18, MM=6, NN=3)."""
    return build_voting_graph(SCALED_CONFIGURATIONS["medium"])


@pytest.fixture(scope="session")
def voting_kernel_medium(voting_graph_medium):
    return build_kernel(voting_graph_medium)


@pytest.fixture(scope="session")
def voting_kernel_small(voting_graph_small):
    return build_kernel(voting_graph_small)
