"""Ablation A3 — truncation error of the iterative sum vs. the tolerance ε.

Eq. (11) truncates the transition sum once successive iterates change by less
than ε (the paper suggests 1e-8) and Section 6 lists analytical truncation
bounds as future work.  This ablation measures, for a voting-model transform,
how the actual error against the exact (direct-solve) value and the number of
iterations vary with ε — demonstrating that the default tolerance is already
far below the accuracy demanded by the Laplace inversion, and how much cheaper
looser tolerances are.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import SCALED_CONFIGURATIONS, all_voted_predicate, build_voting_kernel, initial_marking_predicate
from repro.smp import PassageTimeOptions, passage_transform, passage_transform_direct, source_weights

EPSILONS = (1e-4, 1e-6, 1e-8, 1e-10, 1e-12)
S_POINT = 0.15 + 1.1j


@pytest.fixture(scope="module")
def case():
    params = SCALED_CONFIGURATIONS["small"]
    kernel, graph = build_voting_kernel(params)
    sources = graph.states_where(initial_marking_predicate(params))
    targets = graph.states_where(all_voted_predicate(params))
    alpha = source_weights(kernel, sources)
    exact = complex(np.dot(alpha, passage_transform_direct(kernel, targets, S_POINT)))
    return kernel, alpha, targets, exact


@pytest.mark.benchmark(group="ablation-convergence")
def test_truncation_error_vs_epsilon(benchmark, case, report):
    kernel, alpha, targets, exact = case
    evaluator = kernel.evaluator()

    def sweep():
        rows = []
        for eps in EPSILONS:
            options = PassageTimeOptions(epsilon=eps)
            value, diag = passage_transform(evaluator, alpha, targets, S_POINT, options)
            rows.append((eps, diag.iterations, abs(value - exact), diag.converged))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A3 — truncation of the iterative sum (Eq. 11) vs. tolerance",
        f"s-point {S_POINT}, small voting model, exact value from the direct solve",
        f"{'epsilon':>10} {'iterations r':>13} {'|error|':>12} {'converged':>10}",
    ]
    for eps, iterations, error, converged in rows:
        lines.append(f"{eps:10.0e} {iterations:13d} {error:12.3e} {str(converged):>10}")
    lines += [
        "",
        "The paper's default (1e-8) keeps the truncation error orders of magnitude",
        "below the ~1e-8 discretisation error of the Euler inversion itself.",
    ]
    report("ablation_a3_convergence", lines)

    errors = [error for _, _, error, _ in rows]
    iteration_counts = [iterations for _, iterations, _, _ in rows]
    assert all(converged for *_, converged in rows)
    # Tighter tolerances never increase the error and never decrease the work.
    assert all(e2 <= e1 + 1e-12 for e1, e2 in zip(errors, errors[1:]))
    assert all(r2 >= r1 for r1, r2 in zip(iteration_counts, iteration_counts[1:]))
    # The default tolerance achieves (much) better than inversion-level accuracy.
    assert dict(zip(EPSILONS, errors))[1e-8] < 1e-7

    benchmark.extra_info["iterations_at_default"] = dict(zip(EPSILONS, iteration_counts))[1e-8]
