"""Ablation A4 — state-space partitioning strategies (the paper's future work).

Section 6 anticipates hypergraph partitioning of the data structures to scale
to ~10^8 states.  This ablation compares, on the system-0-sized voting
kernel, the row-partitioning strategies provided by :mod:`repro.partition`:
contiguous, round-robin, greedy non-zero balancing and BFS-locality chunking.
The metrics are load imbalance (compute balance of the vector–matrix
products) and edge cut (communication volume of a row-distributed iteration).
"""
from __future__ import annotations

import pytest

from repro.partition import (
    bfs_locality_partition,
    contiguous_partition,
    evaluate_partition,
    greedy_balanced_partition,
    refine_partition,
    round_robin_partition,
)


def bfs_locality_refined(kernel, n_parts):
    """BFS-locality seed followed by Kernighan–Lin-style local refinement."""
    return refine_partition(kernel, bfs_locality_partition(kernel, n_parts))


STRATEGIES = {
    "contiguous": contiguous_partition,
    "round-robin": round_robin_partition,
    "greedy-balanced": greedy_balanced_partition,
    "bfs-locality": bfs_locality_partition,
    "bfs+refine": bfs_locality_refined,
}
N_PARTS = 16


@pytest.mark.benchmark(group="ablation-partitioning")
@pytest.mark.parametrize("name", list(STRATEGIES), ids=str)
def test_partition_quality(benchmark, name, voting_kernel_medium, report):
    strategy = STRATEGIES[name]
    assignment = benchmark.pedantic(
        strategy, args=(voting_kernel_medium, N_PARTS), rounds=1, iterations=1
    )
    quality = evaluate_partition(voting_kernel_medium, assignment)
    _RESULTS[name] = quality

    benchmark.extra_info["imbalance"] = quality.imbalance
    benchmark.extra_info["edge_cut_fraction"] = quality.edge_cut_fraction
    assert quality.imbalance >= 1.0
    assert 0.0 <= quality.edge_cut_fraction <= 1.0

    if len(_RESULTS) == len(STRATEGIES):
        lines = [
            f"Ablation A4 — partitioning the voting kernel over {N_PARTS} workers "
            f"({voting_kernel_medium.n_states} states, "
            f"{voting_kernel_medium.n_transitions} transitions)",
            f"{'strategy':>16} {'imbalance':>10} {'edge cut':>9} {'cut %':>8}",
        ]
        for strat, q in _RESULTS.items():
            lines.append(
                f"{strat:>16} {q.imbalance:10.3f} {q.edge_cut:9d} {q.edge_cut_fraction:8.1%}"
            )
        lines += [
            "",
            "greedy balancing minimises imbalance; BFS-locality trades a little",
            "imbalance for a much smaller cut — the property a hypergraph",
            "partitioner would optimise directly (paper Section 6).",
        ]
        report("ablation_a4_partitioning", lines)

        greedy = _RESULTS["greedy-balanced"]
        round_robin = _RESULTS["round-robin"]
        bfs = _RESULTS["bfs-locality"]
        refined = _RESULTS["bfs+refine"]
        assert greedy.imbalance <= round_robin.imbalance + 1e-9
        assert bfs.edge_cut < round_robin.edge_cut
        assert refined.edge_cut <= bfs.edge_cut


_RESULTS: dict[str, object] = {}
