"""Ablation A2 — the iterative algorithm vs. the direct linear solve.

Section 3.1 motivates the iterative algorithm by its O(N^2 r) worst-case cost
(sparse vector–matrix products) against the O(N^3) of classical solution
methods for Eq. (2), while Section 2.2 presents the linear-system formulation
the iterative method replaces.  This ablation measures both methods on the
same transforms — they must agree numerically — and reports how the cost per
s-point scales with the state-space size on voting-model kernels.
"""
from __future__ import annotations

import time

import numpy as np
import pytest

from repro.models import (
    SCALED_CONFIGURATIONS,
    VotingParameters,
    all_voted_predicate,
    build_voting_kernel,
    initial_marking_predicate,
)
from repro.smp import (
    PassageTimeOptions,
    passage_transform_direct,
    passage_transform_vector,
)

S_POINTS = [0.25 + 0.9j, 0.12 + 3.1j, 0.5 + 7.4j]


def _voting_case(params: VotingParameters):
    kernel, graph = build_voting_kernel(params)
    targets = graph.states_where(all_voted_predicate(params))
    return kernel, targets


@pytest.mark.benchmark(group="ablation-iterative-vs-direct")
@pytest.mark.parametrize("config", ["tiny", "small", "medium"])
def test_iterative_vs_direct_per_s_point(benchmark, config, report):
    params = SCALED_CONFIGURATIONS[config]
    kernel, targets = _voting_case(params)
    evaluator = kernel.evaluator()

    def iterative_all():
        return [
            passage_transform_vector(evaluator, targets, s, PassageTimeOptions())[0]
            for s in S_POINTS
        ]

    iterative_results = benchmark.pedantic(iterative_all, rounds=1, iterations=1)

    start = time.perf_counter()
    direct_results = [passage_transform_direct(evaluator, targets, s) for s in S_POINTS]
    direct_seconds = time.perf_counter() - start

    worst = max(
        float(np.max(np.abs(i - d))) for i, d in zip(iterative_results, direct_results)
    )
    _RESULTS[config] = (kernel.n_states, kernel.n_transitions, direct_seconds, worst)

    assert worst < 1e-6  # the two formulations solve the same equations

    if len(_RESULTS) == 3:
        lines = [
            "Ablation A2 — iterative passage-time algorithm vs. direct sparse solve",
            f"(3 s-points per configuration; targets = 'all voters processed')",
            f"{'config':>8} {'states':>8} {'transitions':>12} "
            f"{'direct secs':>12} {'max |diff|':>12}",
        ]
        for name, (n, nnz, secs, diff) in _RESULTS.items():
            lines.append(f"{name:>8} {n:8d} {nnz:12d} {secs:12.3f} {diff:12.2e}")
        lines += [
            "",
            "The iterative method's timing is reported by pytest-benchmark for the same",
            "three s-points; its advantage grows with N because it only performs sparse",
            "vector-matrix products (O(N^2 r) worst case vs O(N^3) for elimination).",
        ]
        report("ablation_a2_iterative_vs_direct", lines)


_RESULTS: dict[str, tuple] = {}


@pytest.mark.benchmark(group="ablation-iterative-vs-direct")
def test_iteration_count_grows_as_s_approaches_zero(benchmark, voting_kernel_small, report):
    """The truncation point r of Eq. (10) depends on |s|: smaller Re(s) damps
    each transition less, so more transitions contribute — the behaviour the
    paper flags for future convergence-bound work."""
    targets = [voting_kernel_small.n_states - 1]
    evaluator = voting_kernel_small.evaluator()

    def sweep():
        iterations = {}
        for magnitude in (3.0, 1.0, 0.3, 0.1, 0.03):
            _, diag = passage_transform_vector(evaluator, targets, magnitude + 0.5j)
            iterations[magnitude] = diag.iterations
        return iterations

    iterations = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Iterations to convergence vs. Re(s) (small voting model):",
        f"{'Re(s)':>8} {'iterations r':>13}",
    ]
    lines += [f"{mag:8.2f} {its:13d}" for mag, its in iterations.items()]
    report("ablation_a2_iterations_vs_s", lines)

    values = list(iterations.values())
    assert values == sorted(values)  # monotone growth as Re(s) decreases
